#ifndef SPLITWISE_CORE_CLUSTER_H_
#define SPLITWISE_CORE_CLUSTER_H_

#include <memory>
#include <vector>

#include "core/cls.h"
#include "core/slo.h"
#include "core/designs.h"
#include "engine/kv_transfer.h"
#include "engine/machine.h"
#include "engine/request_pool.h"
#include "metrics/request_metrics.h"
#include "metrics/time_weighted.h"
#include "model/llm_config.h"
#include "model/memory_model.h"
#include "model/perf_model.h"
#include "model/piecewise_perf_model.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "workload/trace.h"
#include "workload/trace_stream.h"

namespace splitwise::sim {
class Clock;
}  // namespace splitwise::sim

namespace splitwise::core {

class Ingress;
struct SessionRecording;

/**
 * Event-priority classes at equal timestamps. Arrivals are pulled
 * from the trace stream one at a time (each arrival event posts the
 * next), so they can no longer rely on pre-run posting order for
 * their low sequence numbers; the explicit priority reproduces the
 * old ordering: fault-plan events, then arrivals, then everything
 * posted at runtime.
 */
inline constexpr int kFaultEventPriority = -2;
inline constexpr int kArrivalEventPriority = -1;

/** Simulation tunables for a cluster run. */
struct SimConfig {
    engine::MlsConfig mls;
    ClsConfig cls;
    /**
     * Scheduling-policy plug-in riding on the two-level scheduler.
     * The default policy is the identity (reports byte-identical to
     * builds without the seam); the prefix policy adds session
     * KV-prefix reuse with affinity routing.
     */
    sched::PolicyConfig policy;
    /** Prompt size at which KV transfer switches to layer-wise. */
    std::int64_t layerwiseThresholdTokens = 512;
    /** KV compression ratio applied before transfer (SVII); 1 = raw. */
    double kvCompressionRatio = 1.0;
    /**
     * Checkpoint each request's KV-cache to an in-memory store after
     * its prompt completes (SIV-E). On a machine failure, requests
     * already past their prompt restore the cache from the store
     * (paying a wire transfer) instead of recomputing from scratch.
     */
    bool kvCheckpointing = false;
    /** Checkpoint-store restore bandwidth, GB/s. */
    double checkpointRestoreGBps = 100.0;
    /** Fraction of HBM the serving framework may use. */
    double memoryUtilFraction = 0.92;
    /** Timeout/retry/backoff policy for transient KV-transfer faults. */
    engine::KvRetryPolicy kvRetry;
    /**
     * Price iterations with the fitted piecewise-linear model (the
     * paper's SV-B methodology) instead of the analytical model the
     * fit is derived from. The two agree within 3% MAPE.
     */
    bool usePiecewisePerfModel = false;
    /**
     * Hold per-request latency distributions in DDSketch-style
     * quantile sketches (O(buckets) memory) instead of exact
     * per-request records. Percentiles stay within the sketch's
     * relative-error bound; the per-request record vector stays
     * empty. Flip before run() only.
     */
    bool sketchLatencies = false;
    /**
     * Declared bound on simultaneously in-flight request slots;
     * 0 = unbounded. Not enforced by the cluster - the DST
     * invariant checker's live-set-bound invariant fails a run whose
     * live set ever exceeds it, pinning the O(in-flight) memory
     * contract.
     */
    std::size_t maxLiveRequests = 0;
    /**
     * Recycle retired request slots (the normal O(in-flight) mode).
     * Off reproduces the pre-pool O(total-arrivals) live set; the
     * scale bench's naive-baseline mode only.
     */
    bool requestRecycling = true;
    /** Lifecycle tracing and time-series sampling switches. */
    telemetry::TelemetryConfig telemetry;
};

/** Aggregated activity of one machine pool over a run. */
struct PoolReport {
    int machines = 0;
    sim::TimeUs busyUs = 0;
    std::uint64_t iterations = 0;
    double energyWh = 0.0;
    std::int64_t promptTokensProcessed = 0;
    std::int64_t tokensGenerated = 0;
    /** Machine-time powered off by the control plane. */
    sim::TimeUs parkedUs = 0;
    /** Machine-time lost to failures. */
    sim::TimeUs downUs = 0;
    /** Machine-time the deployment paid for (wall minus parked). */
    sim::TimeUs poweredUs = 0;
    /** Idle-floor energy while powered and not iterating, Wh. */
    double idleEnergyWh = 0.0;
    /** Paid machine-hours priced at the pool's spec rate. */
    double costDollars = 0.0;
    /** Time-weighted active-batched-token distribution (Fig. 17). */
    metrics::TimeWeightedHistogram activeTokens;
};

/**
 * What the online control plane did over a run. Only meaningful (and
 * only serialized) when an autoscaler drove the cluster; a disabled
 * report keeps existing outputs byte-identical.
 */
struct ControlReport {
    bool enabled = false;
    /** Controller evaluations (periodic ticks). */
    std::uint64_t ticks = 0;
    /** Machines brought into routing (unparked or un-retired). */
    std::uint64_t scaleUps = 0;
    /** Machines retired from routing toward park. */
    std::uint64_t scaleDowns = 0;
    /** Machines moved between prompt/token roles under surge. */
    std::uint64_t roleFlexes = 0;
    /** Brownout-ladder moves (either direction). */
    std::uint64_t brownoutTransitions = 0;
    int maxBrownoutLevel = 0;
    /** Simulated time spent at brownout level >= 1. */
    sim::TimeUs brownoutUs = 0;
    /** Power-cap assignments issued for the facility budget. */
    std::uint64_t powerCapChanges = 0;
    /** Failures that forced a standby machine back into routing. */
    std::uint64_t emergencyRestores = 0;
    /** Fleet totals the controller trades off against SLOs. */
    double machineHours = 0.0;
    double costDollars = 0.0;
    /** Busy + idle energy across the fleet, Wh. */
    double totalEnergyWh = 0.0;
    /**
     * Fraction of submitted requests finished within every Table VI
     * P99 limit; shed and rejected requests count against it.
     */
    double sloAttainment = 0.0;
};

/**
 * Session prefix-cache activity over a run. Only meaningful (and only
 * serialized) when the prefix policy drove scheduling; a disabled
 * report keeps default-policy outputs byte-identical.
 */
struct PrefixCacheReport {
    bool enabled = false;
    /** Prefix pins taken (cluster-wide, from BlockManager). */
    std::uint64_t hits = 0;
    /** Machine-level acquire failures (entry evicted under the
     *  routed request's feet). */
    std::uint64_t misses = 0;
    /** Refcount-zero prefixes evicted for real traffic. */
    std::uint64_t evictions = 0;
    /** Prefix inserts plus in-place growths. */
    std::uint64_t stores = 0;
    /** Prompt tokens skipped across all hits. */
    std::int64_t hitTokens = 0;
    /** Directory lookups that named no machine (policy-level). */
    std::uint64_t directoryMisses = 0;
    /** Requests routed by session affinity instead of JSQ. */
    std::uint64_t affinityRoutes = 0;
    /** Sessions tracked in the directory at end of run. */
    std::uint64_t directorySize = 0;
};

/** Everything a cluster run produced. */
struct RunReport {
    metrics::RequestMetrics requests;
    std::size_t submitted = 0;
    sim::TimeUs simulatedUs = 0;
    hw::FleetFootprint footprint;
    engine::KvTransferEngine::Stats transfers;
    /** Baseline designs report all machines under promptPool. */
    PoolReport promptPool;
    PoolReport tokenPool;
    std::uint64_t mixedRoutes = 0;
    std::uint64_t poolTransitions = 0;
    std::uint64_t preemptions = 0;
    /** Requests restarted after machine failures (SIV-E). */
    std::uint64_t restarts = 0;
    /** Failure recoveries served from the KV checkpoint store. */
    std::uint64_t checkpointRestores = 0;
    /** Arrivals shed by admission control (counted, not dropped). */
    std::uint64_t rejected = 0;
    /** Failed machines that recovered and rejoined their pool. */
    std::uint64_t rejoins = 0;
    /**
     * Sampled cluster metrics over the run; empty unless
     * SimConfig::telemetry.sampleIntervalUs was set.
     */
    telemetry::TimeSeries timeseries;
    /** Control-plane activity; disabled unless an autoscaler ran. */
    ControlReport control;
    /** Prefix-cache activity; disabled under the default policy. */
    PrefixCacheReport prefixCache;
    /**
     * Critical-path latency attribution; disabled unless
     * SimConfig::telemetry.spanTracking was set.
     */
    telemetry::LatencyBreakdown breakdown;

    /** Completed-request throughput over the run. */
    double
    throughputRps() const
    {
        return requests.throughputRps();
    }
};

/**
 * A simulated LLM inference cluster: machines, transfer engine, and
 * the cluster-level scheduler, assembled from a ClusterDesign.
 *
 * One-shot: construct, run() a trace once, read the report.
 */
class Cluster {
  public:
    Cluster(model::LlmConfig llm, ClusterDesign design, SimConfig config = {});

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    /**
     * Run the simulation to completion over a pull-based trace
     * stream and report. Arrivals are pulled one at a time (each
     * arrival event posts the next), so the full request vector is
     * never materialized and retired request slots recycle as
     * requests complete. Requests that can never finish trip a
     * fatal error.
     */
    RunReport run(workload::TraceStream& stream);

    /**
     * Materialized-trace convenience wrapper: adapts @p trace
     * through a VectorTraceStream and runs the streaming path, so
     * both entry points produce byte-identical reports.
     */
    RunReport run(const workload::Trace& trace);

    /**
     * Serve live traffic from a thread-safe Ingress until it is shut
     * down and drained, paced by @p clock (SimClock = full speed,
     * WallClock = real time), and report exactly as run() does.
     *
     * The event engine stays single-threaded: client operations park
     * in the ingress mailbox and are drained only at quiescent
     * points — after every event sharing a timestamp has fired —
     * then stamped with a strictly increasing simulated time and
     * posted at arrival priority. Because the stamps are unique and
     * the whole timestamp batch fires before the next drain, the
     * run's total event order is a function of the stamped operation
     * list alone; @p capture (when non-null) records that list as a
     * SessionRecording, which core::replay() re-runs bit-exact
     * through the offline streaming path.
     *
     * One-shot, like run(). Mutually exclusive with run().
     */
    RunReport serve(Ingress& ingress, sim::Clock& clock,
                    SessionRecording* capture = nullptr);

    /**
     * Schedule a cancellation of request @p request_id at simulated
     * time @p at (replay of a captured live session). The request's
     * token budget is clamped so it finishes at its next token
     * boundary — the same brownout-style clamp the live cancel path
     * applies. Unknown or already-finished ids no-op. Call before
     * run().
     */
    void scheduleCancel(std::uint64_t request_id, sim::TimeUs at);

    /**
     * Schedule a permanent machine failure at simulated time @p at
     * (SIV-E). The machine drops out of every pool; requests queued,
     * running, transferring, or decoding on it restart from scratch
     * on the surviving machines. Call before run().
     */
    void scheduleFailure(int machine_id, sim::TimeUs at);

    /**
     * Schedule a transient crash: the machine fails at @p at and
     * rejoins its pool (empty, with fresh scheduler state) after
     * @p downtime_us. Call before run().
     */
    void scheduleFailure(int machine_id, sim::TimeUs at,
                         sim::TimeUs downtime_us);

    /**
     * Schedule a straggler window: the machine's iterations run
     * @p factor times slower (factor > 1) during
     * [at, at + duration_us). The CLS routes around it as its queues
     * grow. Call before run().
     */
    void scheduleSlowdown(int machine_id, sim::TimeUs at,
                          sim::TimeUs duration_us, double factor);

    /**
     * Schedule a NIC fault window on a machine: KV transfers
     * touching it during [at, at + duration_us) fail and are retried
     * per SimConfig::kvRetry. Call before run().
     */
    void scheduleLinkFault(int machine_id, sim::TimeUs at,
                           sim::TimeUs duration_us);

    /**
     * Schedule a NIC degradation window: transfers touching the
     * machine during [at, at + duration_us) run at
     * @p bandwidth_factor of nominal speed. Call before run().
     */
    void scheduleLinkDegrade(int machine_id, sim::TimeUs at,
                             sim::TimeUs duration_us,
                             double bandwidth_factor);

    const ClusterDesign& design() const { return design_; }
    const model::LlmConfig& llm() const { return llm_; }
    sim::Simulator& simulator() { return simulator_; }
    const sim::Simulator& simulator() const { return simulator_; }
    ClusterScheduler& scheduler() { return *cls_; }
    engine::KvTransferEngine& transferEngine() { return engine_; }

    /** The scheduling policy selected by SimConfig::policy. */
    sched::Policy& policy() { return *policy_; }
    const sched::Policy& policy() const { return *policy_; }

    /**
     * Lifecycle trace of the last run; nullptr unless
     * SimConfig::telemetry.traceEnabled was set.
     */
    telemetry::TraceRecorder* traceRecorder() { return trace_.get(); }

    /**
     * Per-request span timelines of the last run; nullptr unless
     * SimConfig::telemetry.spanTracking was set (and the build has
     * telemetry compiled in).
     */
    telemetry::SpanTracker* spanTracker() { return spans_.get(); }
    const telemetry::SpanTracker* spanTracker() const { return spans_.get(); }

    /** The run's counter/gauge registry (always populated). */
    telemetry::MetricsRegistry& metrics() { return registry_; }
    const telemetry::MetricsRegistry& metrics() const { return registry_; }

    /** All machines (prompt pool first, then token pool). */
    const std::vector<std::unique_ptr<engine::Machine>>&
    machines() const
    {
        return machines_;
    }

    /**
     * Pooled live-request storage: one recycled slot per in-flight
     * request. The DST invariant checker and the control plane walk
     * the live slots (forEachLive) to assert cross-layer
     * conservation laws mid-run; retired requests are released at
     * completion, so the walk is O(in-flight).
     */
    const engine::RequestPool& requestPool() const { return pool_; }

    /** The simulation tunables this cluster was built with. */
    const SimConfig& config() const { return config_; }

    /** Completed-request records accumulated so far. */
    const metrics::RequestMetrics& results() const { return results_; }

    /**
     * Failures that emptied routing entirely while the controller
     * held machines in standby, forcing one straight back in.
     */
    std::uint64_t emergencyRestores() const { return emergencyRestores_; }

  private:
    engine::Machine* machineById(int id);

    /**
     * Pull the next request from the active stream and post its
     * arrival event (which admits it and pulls the one after).
     */
    void postNextArrival();

    /** Acquire a slot for @p spec and route it through admission. */
    void admitArrival(const workload::Request& spec);

    /** One-shot guard shared by run() and serve(). */
    void beginRun();

    /** Start periodic time-series sampling when configured. */
    void installSampler();

    /**
     * Post-run balance check plus report assembly; the tail shared
     * by run() and serve().
     */
    RunReport buildReport();

    /**
     * Clamp @p request_id's token budget so it finishes at the next
     * token boundary (live cancel / replayed cancel event body).
     */
    void cancelRequest(std::uint64_t request_id);

    /** Register counters/gauges and attach the trace recorder. */
    void setupTelemetry();

    /** Common validation for the fault-scheduling entry points. */
    void checkFaultSchedulable(int machine_id) const;

    /** Take the machine down and restart its in-flight requests. */
    void failMachine(int machine_id);

    /** Bring a failed machine back and re-admit it to routing. */
    void recoverMachine(int machine_id);

    /** KV-transfer retry budget exhausted: restart from scratch. */
    void onTransferAbort(engine::LiveRequest* request);

    /**
     * Worst per-metric Table VI slowdown of one completed request
     * (max of TTFT, TBT, and E2E against the DGX-A100 reference) —
     * the exemplar-ranking key. Requires sloRef_.
     */
    double worstSlowdown(const metrics::RequestResult& result) const;

    /**
     * Recover a decode-phase request from the KV checkpoint store
     * onto a healthy machine.
     *
     * @return false when no machine can host it (caller falls back
     *     to a from-scratch restart).
     */
    bool restoreFromCheckpoint(engine::LiveRequest* request);

    model::LlmConfig llm_;
    ClusterDesign design_;
    SimConfig config_;
    sim::Simulator simulator_;

    /** Perf/memory models per distinct machine spec. */
    std::vector<std::unique_ptr<model::PerfModel>> perfModels_;
    std::vector<std::unique_ptr<model::MemoryModel>> memoryModels_;

    std::vector<std::unique_ptr<engine::Machine>> machines_;
    engine::KvTransferEngine engine_;
    std::unique_ptr<ClusterScheduler> cls_;
    /** The scheduling-policy plug-in; never null once constructed. */
    std::unique_ptr<sched::Policy> policy_;

    engine::RequestPool pool_;
    /** The stream feeding the current run(); null outside run(). */
    workload::TraceStream* stream_ = nullptr;
    /** Arrivals pulled from the stream (admitted or rejected). */
    std::size_t submitted_ = 0;
    metrics::RequestMetrics results_;

    /**
     * Fault/recovery counters live in the registry so the sampler
     * and the report read the same cells (single source of truth).
     */
    telemetry::MetricsRegistry registry_;
    telemetry::Counter* restarts_ = nullptr;
    telemetry::Counter* checkpointRestores_ = nullptr;
    telemetry::Counter* rejected_ = nullptr;
    std::unique_ptr<telemetry::TraceRecorder> trace_;
    std::unique_ptr<telemetry::SpanTracker> spans_;
    /** Slowdown reference for exemplar ranking; set iff spans_ is. */
    std::unique_ptr<SloChecker> sloRef_;
    std::unique_ptr<telemetry::TimeSeriesSampler> sampler_;
    std::uint64_t emergencyRestores_ = 0;
    bool ran_ = false;

    /**
     * Live-serving hooks, installed by serve() only: request
     * completion and admission-rejection notifications for the
     * ingress boundary. Null on every offline path, so run() stays
     * byte-identical to pre-serve builds.
     */
    std::function<void(engine::LiveRequest*)> liveDone_;
    std::function<void(engine::LiveRequest*)> liveRejected_;
};

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_CLUSTER_H_
