#include "core/run.h"

#include <cstdio>
#include <utility>

#include "sim/log.h"
#include "sim/run_pool.h"

namespace splitwise::core {

namespace {

/** Switch on the telemetry collection each requested sink needs. */
SimConfig
effectiveConfig(const RunOptions& options)
{
    SimConfig config = options.sim;
    if (!options.sinks.tracePath.empty())
        config.telemetry.traceEnabled = true;
    if (!options.sinks.timeseriesPath.empty() &&
        config.telemetry.sampleIntervalUs <= 0) {
        config.telemetry.sampleIntervalUs = sim::msToUs(1000.0);
    }
    if (!options.sinks.breakdownPath.empty())
        config.telemetry.spanTracking = true;
    return config;
}

/**
 * Build the cluster, execute it via @p doRun (materialized trace or
 * pull stream), and write the requested sinks under run index
 * @p index. Shared spine of runOne and runStream.
 */
template <typename RunFn>
RunReport
runOneWith(const RunOptions& options, const SimConfig& config, int index,
           RunFn&& doRun)
{
    Cluster cluster(options.llm, options.design, config);
    if (!options.faults.empty())
        FaultInjector(cluster).apply(options.faults);
    RunReport report = doRun(cluster);
    if (!options.sinks.tracePath.empty() && cluster.traceRecorder()) {
        const auto path = indexedSinkPath(options.sinks.tracePath, index);
        cluster.traceRecorder()->writeFile(path);
        std::printf("wrote trace %s (%zu events)\n", path.c_str(),
                    cluster.traceRecorder()->eventCount());
    }
    if (!options.sinks.timeseriesPath.empty() &&
        !report.timeseries.empty()) {
        const auto path =
            indexedSinkPath(options.sinks.timeseriesPath, index);
        report.timeseries.writeCsv(path);
        std::printf("wrote timeseries %s (%zu rows)\n", path.c_str(),
                    report.timeseries.rows.size());
    }
    if (!options.sinks.breakdownPath.empty() && cluster.spanTracker()) {
        const auto path = indexedSinkPath(options.sinks.breakdownPath, index);
        const std::string json = cluster.spanTracker()->attributionJson();
        std::FILE* file = std::fopen(path.c_str(), "w");
        if (!file)
            sim::fatal("core::run: cannot write breakdown file " + path);
        std::fwrite(json.data(), 1, json.size(), file);
        std::fclose(file);
        std::printf("wrote breakdown %s (%zu requests)\n", path.c_str(),
                    cluster.spanTracker()->completedCount());
    }
    return report;
}

/** Execute one trace of the options under an explicit run index. */
RunReport
runOne(const RunOptions& options, const SimConfig& config,
       const workload::Trace& trace, int index)
{
    return runOneWith(options, config, index,
                      [&](Cluster& cluster) { return cluster.run(trace); });
}

}  // namespace

std::string
indexedSinkPath(const std::string& path, int index)
{
    if (index == 0)
        return path;
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    const bool has_ext = dot != std::string::npos &&
                         (slash == std::string::npos || dot > slash);
    const std::string suffix = "." + std::to_string(index);
    if (!has_ext)
        return path + suffix;
    return path.substr(0, dot) + suffix + path.substr(dot);
}

RunReport
run(const RunOptions& options)
{
    if (options.traces.size() != 1) {
        sim::fatal("core::run expects exactly one trace (got " +
                   std::to_string(options.traces.size()) +
                   "); use runMany for batches");
    }
    return runOne(options, effectiveConfig(options), options.traces.front(),
                  /*index=*/0);
}

RunReport
runStream(const RunOptions& options, workload::TraceStream& stream)
{
    if (!options.traces.empty()) {
        sim::fatal("core::runStream: options.traces must be empty (got " +
                   std::to_string(options.traces.size()) +
                   "); the stream is the workload");
    }
    return runOneWith(options, effectiveConfig(options), /*index=*/0,
                      [&](Cluster& cluster) { return cluster.run(stream); });
}

RunReport
runLive(const RunOptions& options, Ingress& ingress, sim::Clock& clock,
        SessionRecording* capture)
{
    if (!options.traces.empty()) {
        sim::fatal("core::runLive: options.traces must be empty (got " +
                   std::to_string(options.traces.size()) +
                   "); the ingress is the workload");
    }
    return runOneWith(options, effectiveConfig(options), /*index=*/0,
                      [&](Cluster& cluster) {
                          return cluster.serve(ingress, clock, capture);
                      });
}

RunReport
replay(const RunOptions& options, const SessionRecording& recording)
{
    if (!options.traces.empty()) {
        sim::fatal("core::replay: options.traces must be empty (got " +
                   std::to_string(options.traces.size()) +
                   "); the recording is the workload");
    }
    return runOneWith(options, effectiveConfig(options), /*index=*/0,
                      [&](Cluster& cluster) {
                          for (const auto& c : recording.cancels)
                              cluster.scheduleCancel(c.requestId, c.at);
                          workload::VectorTraceStream stream(
                              recording.requests);
                          return cluster.run(stream);
                      });
}

std::vector<RunReport>
runMany(const RunOptions& options)
{
    const SimConfig config = effectiveConfig(options);
    const int jobs =
        options.jobs > 0 ? options.jobs : sim::RunPool::defaultJobs();
    sim::RunPool pool(jobs);
    return pool.map(options.traces,
                    [&](const workload::Trace& trace, std::size_t index) {
                        return runOne(options, config, trace,
                                      static_cast<int>(index));
                    });
}

}  // namespace splitwise::core
