#include "core/cls.h"

#include <limits>

#include "sim/log.h"

namespace splitwise::core {

const char*
poolTypeName(PoolType pool)
{
    switch (pool) {
      case PoolType::kPrompt: return "prompt";
      case PoolType::kToken: return "token";
      case PoolType::kMixed: return "mixed";
    }
    return "?";
}

ClusterScheduler::ClusterScheduler(sim::Simulator& simulator, ClsConfig config,
                                   std::vector<engine::Machine*> prompt_machines,
                                   std::vector<engine::Machine*> token_machines,
                                   bool splitwise)
    : simulator_(simulator), config_(config), splitwise_(splitwise),
      routingRng_(config.routingSeed)
{
    if (prompt_machines.empty() && token_machines.empty())
        sim::fatal("ClusterScheduler: no machines");
    for (auto* m : prompt_machines) {
        const PoolType origin = splitwise_ ? PoolType::kPrompt : PoolType::kMixed;
        entries_[m->id()] = {m, origin, origin, 0};
        machineIds_.push_back(m->id());
    }
    for (auto* m : token_machines) {
        const PoolType origin = splitwise_ ? PoolType::kToken : PoolType::kMixed;
        entries_[m->id()] = {m, origin, origin, 0};
        machineIds_.push_back(m->id());
    }
}

void
ClusterScheduler::markFailed(int machine_id)
{
    const auto it = entries_.find(machine_id);
    if (it != entries_.end()) {
        lost_.insert(*it);
        entries_.erase(it);
    } else {
        // A machine can crash while retired to standby (draining or
        // parked); it still needs to be parked for rejoin().
        const auto sit = standby_.find(machine_id);
        if (sit == standby_.end())
            return;
        lost_.insert(*sit);
        standby_.erase(sit);
    }
    // Routed machines can hit zero while standby still holds live
    // capacity - the owner must restore from standby immediately
    // (Cluster's emergency restore). Only a cluster with nothing
    // left anywhere is unrecoverable.
    if (entries_.empty() && standby_.empty())
        sim::fatal("ClusterScheduler: every machine has failed");
}

void
ClusterScheduler::rejoin(int machine_id)
{
    const auto it = lost_.find(machine_id);
    if (it == lost_.end())
        sim::fatal("ClusterScheduler::rejoin: machine was never lost");
    Entry entry = it->second;
    lost_.erase(it);
    // The machine comes back empty: restore its original identity
    // and drop any mixed-pool residue from before the crash.
    entry.pool = entry.origin;
    entry.mixedSince = 0;
    entries_[machine_id] = entry;
    ++rejoins_;
    TELEM_INSTANT(trace_, telemetry::TraceRecorder::clusterTrack(), "rejoin",
                  simulator_.now(),
                  {{"machine", machine_id},
                   {"pool", poolTypeName(entry.pool)}});
}

void
ClusterScheduler::retire(int machine_id)
{
    const auto it = entries_.find(machine_id);
    if (it == entries_.end())
        sim::fatal("ClusterScheduler::retire: machine is not routed");
    if (entries_.size() == 1)
        sim::fatal("ClusterScheduler::retire: last routed machine");
    standby_.insert(*it);
    entries_.erase(it);
    ++retires_;
    TELEM_INSTANT(trace_, telemetry::TraceRecorder::clusterTrack(), "retire",
                  simulator_.now(), {{"machine", machine_id}});
}

void
ClusterScheduler::restore(int machine_id)
{
    const auto it = standby_.find(machine_id);
    if (it == standby_.end())
        sim::fatal("ClusterScheduler::restore: machine is not in standby");
    restore(machine_id, it->second.origin);
}

void
ClusterScheduler::restore(int machine_id, PoolType origin)
{
    const auto it = standby_.find(machine_id);
    if (it == standby_.end())
        sim::fatal("ClusterScheduler::restore: machine is not in standby");
    Entry entry = it->second;
    standby_.erase(it);
    // The machine was drained before standby, so it re-enters with a
    // clean identity - possibly a new one (role flex).
    entry.origin = origin;
    entry.pool = origin;
    entry.mixedSince = 0;
    entries_[machine_id] = entry;
    ++restores_;
    TELEM_INSTANT(trace_, telemetry::TraceRecorder::clusterTrack(), "restore",
                  simulator_.now(),
                  {{"machine", machine_id}, {"pool", poolTypeName(origin)}});
}

bool
ClusterScheduler::inStandby(int machine_id) const
{
    return standby_.count(machine_id) > 0;
}

int
ClusterScheduler::anyStandby() const
{
    int best = -1;
    for (const auto& [id, entry] : standby_) {
        if (best < 0 || id < best)
            best = id;
    }
    return best;
}

void
ClusterScheduler::setBrownoutLevel(int level)
{
    if (level < 0 || level > 3)
        sim::fatal("ClusterScheduler::setBrownoutLevel: level out of range");
    if (level == brownoutLevel_)
        return;
    brownoutLevel_ = level;
    TELEM_INSTANT(trace_, telemetry::TraceRecorder::clusterTrack(),
                  "brownout", simulator_.now(), {{"level", level}});
#if SPLITWISE_TELEMETRY_ENABLED
    if (spans_)
        spans_->setBrownoutLevel(level);
#endif
}

std::size_t
ClusterScheduler::poolSize(PoolType pool) const
{
    std::size_t n = 0;
    for (const auto& [id, entry] : entries_) {
        if (entry.pool == pool)
            ++n;
    }
    return n;
}

bool
ClusterScheduler::contains(int machine_id) const
{
    return entries_.count(machine_id) > 0;
}

PoolType
ClusterScheduler::poolOf(int machine_id) const
{
    const auto it = entries_.find(machine_id);
    if (it != entries_.end())
        return it->second.pool;
    // Standby and failed machines hold no routing pool; report their
    // remembered identity instead.
    return originOf(machine_id);
}

PoolType
ClusterScheduler::originOf(int machine_id) const
{
    const auto it = entries_.find(machine_id);
    if (it != entries_.end())
        return it->second.origin;
    const auto standby = standby_.find(machine_id);
    if (standby != standby_.end())
        return standby->second.origin;
    return lost_.at(machine_id).origin;
}

engine::Machine*
ClusterScheduler::pickRandom(std::vector<engine::Machine*>& eligible) const
{
    if (eligible.empty())
        return nullptr;
    const auto idx = static_cast<std::size_t>(routingRng_.uniformInt(
        0, static_cast<std::int64_t>(eligible.size()) - 1));
    return eligible[idx];
}

engine::Machine*
ClusterScheduler::jsqPrompt(PoolType pool) const
{
    // A mixed-pool machine retains its identity (SIV-A): a prompt
    // machine temporarily running tokens still takes prompt work.
    engine::Machine* best = nullptr;
    std::int64_t best_depth = std::numeric_limits<std::int64_t>::max();
    std::vector<engine::Machine*> eligible;
    for (const auto& [id, entry] : entries_) {
        const bool ok =
            entry.pool == pool ||
            (pool == PoolType::kPrompt && entry.pool == PoolType::kMixed &&
             entry.origin == PoolType::kPrompt);
        if (!ok)
            continue;
        if (config_.routing == RoutingPolicy::kRandom) {
            eligible.push_back(entry.machine);
            continue;
        }
        const std::int64_t depth = entry.machine->promptQueueDepthTokens();
        if (depth < best_depth) {
            best_depth = depth;
            best = entry.machine;
        }
    }
    if (config_.routing == RoutingPolicy::kRandom)
        return pickRandom(eligible);
    return best;
}

engine::Machine*
ClusterScheduler::jsqToken(PoolType pool) const
{
    engine::Machine* best = nullptr;
    std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
    std::vector<engine::Machine*> eligible;
    for (const auto& [id, entry] : entries_) {
        const bool ok =
            entry.pool == pool ||
            (pool == PoolType::kToken && entry.pool == PoolType::kMixed &&
             entry.origin == PoolType::kToken);
        if (!ok)
            continue;
        if (config_.routing == RoutingPolicy::kRandom) {
            eligible.push_back(entry.machine);
            continue;
        }
        const std::int64_t load = entry.machine->tokenLoadTokens();
        if (load < best_load) {
            best_load = load;
            best = entry.machine;
        }
    }
    if (config_.routing == RoutingPolicy::kRandom)
        return pickRandom(eligible);
    return best;
}

void
ClusterScheduler::moveToPool(int machine_id, PoolType pool)
{
    Entry& entry = entries_.at(machine_id);
    if (entry.pool == pool)
        return;
    entry.pool = pool;
    if (pool == PoolType::kMixed)
        entry.mixedSince = simulator_.now();
    ++poolTransitions_;
    TELEM_INSTANT(trace_, telemetry::TraceRecorder::clusterTrack(),
                  "pool_transition", simulator_.now(),
                  {{"machine", machine_id}, {"pool", poolTypeName(pool)}});
}

bool
ClusterScheduler::promptOverloaded(const engine::Machine& m) const
{
    return m.promptQueueDepthTokens() > config_.promptOverflowTokens;
}

bool
ClusterScheduler::tokenOverloaded(const engine::Machine& m) const
{
    const std::int64_t capacity = m.mls().blocks().tokenCapacity();
    if (capacity <= 0)
        return true;
    const double util = static_cast<double>(m.tokenLoadTokens()) /
                        static_cast<double>(capacity);
    if (util > config_.tokenOverflowUtilization)
        return true;
    // Residents plus reserved inbound transfers: past the
    // latency-efficient batch range the machine counts as full even
    // with KV memory to spare.
    const auto pending = static_cast<int>(m.mls().blocks().residents());
    const int limit = config_.tokenSloTbtMs > 0.0
                          ? m.maxBatchWithinTbt(config_.tokenSloTbtMs)
                          : config_.tokenOverflowResidents;
    return pending > limit;
}

engine::Machine*
ClusterScheduler::pickPromptMachine(bool& local_decode)
{
    local_decode = false;
    engine::Machine* best = jsqPrompt(PoolType::kPrompt);
    if (best && !promptOverloaded(*best))
        return best;

    // Overflow: consult the mixed pool; a mixed machine serves the
    // request like a non-Splitwise machine, both phases local.
    engine::Machine* mixed = jsqPrompt(PoolType::kMixed);
    if (mixed && !promptOverloaded(*mixed)) {
        local_decode = true;
        ++mixedRoutes_;
        return mixed;
    }

    // Mixed pool full too: pull the least-loaded token machine in.
    engine::Machine* pulled = jsqPrompt(PoolType::kToken);
    if (pulled) {
        moveToPool(pulled->id(), PoolType::kMixed);
        local_decode = true;
        ++mixedRoutes_;
        return pulled;
    }
    return best ? best : mixed;
}

engine::Machine*
ClusterScheduler::pickTokenMachine()
{
    engine::Machine* best = jsqToken(PoolType::kToken);
    if (best && !tokenOverloaded(*best))
        return best;

    engine::Machine* mixed = jsqToken(PoolType::kMixed);
    if (mixed && !tokenOverloaded(*mixed)) {
        ++mixedRoutes_;
        return mixed;
    }

    engine::Machine* pulled = jsqToken(PoolType::kPrompt);
    if (pulled) {
        moveToPool(pulled->id(), PoolType::kMixed);
        ++mixedRoutes_;
        return pulled;
    }
    return best ? best : mixed;
}

engine::Machine*
ClusterScheduler::pickRecoveryTokenMachine()
{
    // Recovery placement is conservative: the cluster is already in
    // a degraded state, so never pull a prompt machine into mixed
    // and never land a recovered decode on a failed or saturated
    // host - a nullptr falls back to a from-scratch restart instead.
    engine::Machine* best = nullptr;
    std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
    for (const auto& [id, entry] : entries_) {
        engine::Machine* m = entry.machine;
        if (m->failed())
            continue;
        const bool token_capable =
            entry.pool == PoolType::kToken ||
            entry.pool == PoolType::kMixed;
        if (!token_capable || tokenOverloaded(*m))
            continue;
        const std::int64_t load = m->tokenLoadTokens();
        if (load < best_load) {
            best_load = load;
            best = m;
        }
    }
    return best;
}

std::int64_t
ClusterScheduler::queuedPromptTokens() const
{
    std::int64_t total = 0;
    for (const auto& [id, entry] : entries_)
        total += entry.machine->promptQueueDepthTokens();
    return total;
}

bool
ClusterScheduler::shouldShed() const
{
    return config_.shedQueuedTokensBound > 0 &&
           queuedPromptTokens() > config_.shedQueuedTokensBound;
}

bool
ClusterScheduler::shouldShedRequest(const engine::LiveRequest& request) const
{
    // The brownout ladder degrades admission progressively: L1 drops
    // the lowest-value traffic, L3 closes the door entirely. The
    // static queue bound stays active at every level.
    if (brownoutLevel_ >= 3)
        return true;
    if (brownoutLevel_ >= 1 && request.spec.priority > 0)
        return true;
    return shouldShed();
}

engine::Machine*
ClusterScheduler::affinityMachine(engine::LiveRequest* request)
{
    if (!policy_)
        return nullptr;
    const int target = policy_->prepareRoute(*request);
    if (target < 0)
        return nullptr;
    const auto it = entries_.find(target);
    if (it == entries_.end() || it->second.machine->failed()) {
        // Stale directory entry: the machine crashed, retired, or
        // parked since the prefix was stored. The prefix can only be
        // pinned where it lives, so the hit degrades to a full
        // prefill on whatever machine JSQ picks.
        request->cachedPrefixTokens = 0;
        return nullptr;
    }
    policy_->noteAffinityRoute();
    return it->second.machine;
}

void
ClusterScheduler::routeBaseline(engine::LiveRequest* request)
{
    if (engine::Machine* affinity = affinityMachine(request)) {
        request->tokenMachine = affinity->id();
        affinity->submitPrompt(request);
        return;
    }
    engine::Machine* best = nullptr;
    std::int64_t best_depth = std::numeric_limits<std::int64_t>::max();
    std::vector<engine::Machine*> eligible;
    for (const auto& [id, entry] : entries_) {
        if (config_.routing == RoutingPolicy::kRandom) {
            eligible.push_back(entry.machine);
            continue;
        }
        // Pending tokens: queued prompt work plus one per active
        // decode (a decode contributes one token per iteration).
        const std::int64_t depth =
            entry.machine->promptQueueDepthTokens() +
            static_cast<std::int64_t>(entry.machine->mls().residentCount());
        if (depth < best_depth) {
            best_depth = depth;
            best = entry.machine;
        }
    }
    if (config_.routing == RoutingPolicy::kRandom)
        best = pickRandom(eligible);
    request->tokenMachine = best->id();
    best->submitPrompt(request);
}

void
ClusterScheduler::routeSplitwise(engine::LiveRequest* request)
{
    bool local_decode = false;
    engine::Machine* prompt_machine = affinityMachine(request);
    if (prompt_machine) {
        // Session affinity overrides JSQ for the prompt phase only;
        // the decode placement below stays load-driven. A mixed-pool
        // target keeps both phases local, like any mixed-pool route.
        local_decode = poolOf(prompt_machine->id()) == PoolType::kMixed;
    } else {
        prompt_machine = pickPromptMachine(local_decode);
    }
    if (!prompt_machine)
        sim::panic("ClusterScheduler: no prompt machine available");

    if (local_decode) {
        request->tokenMachine = prompt_machine->id();
    } else {
        engine::Machine* token_machine = pickTokenMachine();
        // When every token-capable machine is saturated, shipping
        // the KV-cache would only add transfer stalls on top of the
        // overload: run both phases locally instead - at stress
        // Splitwise devolves into the iso-count baseline (SVI-E).
        if (!token_machine ||
            (token_machine != prompt_machine &&
             tokenOverloaded(*token_machine))) {
            request->tokenMachine = prompt_machine->id();
        } else {
            request->tokenMachine = token_machine->id();
        }
    }
    prompt_machine->submitPrompt(request);
}

bool
ClusterScheduler::onArrival(engine::LiveRequest* request, bool force_admit)
{
    if (!force_admit && shouldShedRequest(*request)) {
        ++shedRequests_;
        TELEM_INSTANT(trace_, telemetry::TraceRecorder::clusterTrack(),
                      "shed", simulator_.now(),
                      {{"request", request->spec.id}});
        return false;
    }
    // Brownout L2+: cap how much generation an admitted request may
    // demand. Applied at admission so the cap is part of the
    // request's contract for its whole lifetime.
    if (!force_admit && brownoutLevel_ >= 2 &&
        request->spec.outputTokens > config_.brownoutMaxOutputTokens) {
        request->spec.outputTokens = config_.brownoutMaxOutputTokens;
        ++cappedRequests_;
    }
    if (splitwise_)
        routeSplitwise(request);
    else
        routeBaseline(request);
    return true;
}

void
ClusterScheduler::onIterationEnd(engine::Machine& machine)
{
    const auto it = entries_.find(machine.id());
    if (it == entries_.end())
        return;  // failed machine draining a stale event
    Entry& entry = it->second;
    if (entry.pool != PoolType::kMixed || entry.origin == PoolType::kMixed)
        return;

    // Permanent re-purposing after a long mixed-pool stay (SIV-A).
    if (config_.repurposeAfterUs > 0 &&
        simulator_.now() - entry.mixedSince > config_.repurposeAfterUs) {
        entry.origin = entry.origin == PoolType::kPrompt ? PoolType::kToken
                                                         : PoolType::kPrompt;
        ++repurposings_;
    }

    // A mixed-pool machine returns to its origin pool once it has no
    // tasks of the opposite kind left.
    const bool opposite_drained =
        entry.origin == PoolType::kPrompt
            ? !machine.mls().hasDecodeWork()
            : !machine.mls().hasPromptWork();
    if (opposite_drained)
        moveToPool(machine.id(), entry.origin);
}

}  // namespace splitwise::core
