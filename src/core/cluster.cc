#include "core/cluster.h"

#include <algorithm>
#include <string>

#include "sim/log.h"

namespace splitwise::core {

namespace {

/** Build the iteration-pricing model for one machine spec. */
std::unique_ptr<model::PerfModel>
buildPerfModel(const model::LlmConfig& llm, const hw::MachineSpec& spec,
               bool piecewise)
{
    auto analytical = std::make_unique<model::AnalyticalPerfModel>(llm, spec);
    if (!piecewise)
        return analytical;
    return model::PiecewiseLinearPerfModel::fit(*analytical);
}

}  // namespace

Cluster::Cluster(model::LlmConfig llm, ClusterDesign design, SimConfig config)
    : llm_(std::move(llm)), design_(std::move(design)), config_(config),
      engine_(simulator_, llm_, config.layerwiseThresholdTokens,
              config.kvCompressionRatio)
{
    if (design_.numPrompt <= 0)
        sim::fatal("Cluster: design needs at least one prompt machine");
    if (design_.splitwise && design_.numToken <= 0)
        sim::fatal("Cluster: Splitwise design needs token machines");

    // Token machines are "full" once another resident would push
    // their TBT past the median SLO bound (Table VI: 1.25x the
    // uncontended DGX-A100 reference).
    if (config_.cls.tokenSloTbtMs == 0.0) {
        const SloChecker reference(llm_);
        config_.cls.tokenSloTbtMs = 1.25 * reference.refTbtMs(1200);
    }

    engine::Machine::Callbacks callbacks;
    callbacks.onPromptDone = [this](engine::Machine& m,
                                    engine::LiveRequest* req,
                                    sim::TimeUs prompt_compute) {
        engine_.startTransfer(req, &m, machineById(req->tokenMachine),
                              prompt_compute, nullptr);
    };
    callbacks.onRequestDone = [this](engine::Machine&,
                                     engine::LiveRequest* req) {
        results_.add(req->result());
    };
    callbacks.transferInterference =
        [this](engine::Machine& m, engine::LiveRequest* req,
               sim::TimeUs prompt_compute) {
            return engine_.interferenceFor(m, req, prompt_compute);
        };
    callbacks.onMemoryFreed = [this](engine::Machine& m) {
        engine_.onMemoryFreed(&m);
    };
    callbacks.onIterationEnd = [this](engine::Machine& m) {
        if (cls_)
            cls_->onIterationEnd(m);
    };

    auto build_pool = [&](const hw::MachineSpec& spec, int count,
                          std::vector<engine::Machine*>& out) {
        if (count <= 0)
            return;
        perfModels_.push_back(
            buildPerfModel(llm_, spec, config_.usePiecewisePerfModel));
        memoryModels_.push_back(std::make_unique<model::MemoryModel>(
            llm_, spec, config_.memoryUtilFraction));
        const auto* perf = perfModels_.back().get();
        const auto* memory = memoryModels_.back().get();
        for (int i = 0; i < count; ++i) {
            const int id = static_cast<int>(machines_.size());
            machines_.push_back(std::make_unique<engine::Machine>(
                simulator_, id, spec, *perf, *memory, config_.mls,
                callbacks));
            engine_.registerMachine(machines_.back().get());
            out.push_back(machines_.back().get());
        }
    };

    std::vector<engine::Machine*> prompt_pool;
    std::vector<engine::Machine*> token_pool;
    build_pool(design_.promptSpec, design_.numPrompt, prompt_pool);
    build_pool(design_.tokenSpec, design_.numToken, token_pool);

    cls_ = std::make_unique<ClusterScheduler>(
        simulator_, config_.cls, prompt_pool, token_pool, design_.splitwise);

    engine_.setRetryPolicy(config_.kvRetry);
    engine_.setOnAbort(
        [this](engine::LiveRequest* req) { onTransferAbort(req); });
}

void
Cluster::checkFaultSchedulable(int machine_id) const
{
    if (ran_)
        sim::fatal("Cluster: fault scheduling must precede run()");
    if (machine_id < 0 || machine_id >= design_.machines())
        sim::fatal("Cluster: bad machine id in fault schedule");
}

void
Cluster::scheduleFailure(int machine_id, sim::TimeUs at)
{
    checkFaultSchedulable(machine_id);
    simulator_.schedule(at, [this, machine_id] { failMachine(machine_id); });
}

void
Cluster::scheduleFailure(int machine_id, sim::TimeUs at,
                         sim::TimeUs downtime_us)
{
    checkFaultSchedulable(machine_id);
    if (downtime_us <= 0)
        sim::fatal("Cluster::scheduleFailure: downtime must be positive");
    simulator_.schedule(at, [this, machine_id] { failMachine(machine_id); });
    simulator_.schedule(at + downtime_us,
                        [this, machine_id] { recoverMachine(machine_id); });
}

void
Cluster::scheduleSlowdown(int machine_id, sim::TimeUs at,
                          sim::TimeUs duration_us, double factor)
{
    checkFaultSchedulable(machine_id);
    if (factor <= 0.0)
        sim::fatal("Cluster::scheduleSlowdown: factor must be positive");
    simulator_.schedule(at, [this, machine_id, factor] {
        machineById(machine_id)->setPerfScale(factor);
    });
    simulator_.schedule(at + duration_us, [this, machine_id] {
        machineById(machine_id)->setPerfScale(1.0);
    });
}

void
Cluster::scheduleLinkFault(int machine_id, sim::TimeUs at,
                           sim::TimeUs duration_us)
{
    checkFaultSchedulable(machine_id);
    engine_.injectLinkFault(machine_id, at, at + duration_us);
}

void
Cluster::scheduleLinkDegrade(int machine_id, sim::TimeUs at,
                             sim::TimeUs duration_us, double bandwidth_factor)
{
    checkFaultSchedulable(machine_id);
    engine_.injectLinkDegrade(machine_id, at, at + duration_us,
                              bandwidth_factor);
}

void
Cluster::failMachine(int machine_id)
{
    engine::Machine* machine = machineById(machine_id);
    if (machine->failed())
        return;
    // Order matters: take the machine out of routing first, then
    // drop its state, then restart the stranded requests on the
    // survivors.
    cls_->markFailed(machine_id);
    machine->fail();

    for (const auto& req_ptr : live_) {
        engine::LiveRequest* req = req_ptr.get();
        if (req->terminal())
            continue;
        const bool stranded =
            ((req->phase == engine::RequestPhase::kPromptQueued ||
              req->phase == engine::RequestPhase::kPromptRunning) &&
             req->promptMachine == machine_id) ||
            (req->phase == engine::RequestPhase::kTransferring &&
             (req->promptMachine == machine_id ||
              req->tokenMachine == machine_id)) ||
            (req->phase == engine::RequestPhase::kDecoding &&
             req->tokenMachine == machine_id);
        if (stranded) {
            // Release any KV copy a surviving machine still holds
            // (e.g. the prompt machine of an in-flight transfer).
            for (int mid : {req->promptMachine, req->tokenMachine}) {
                if (mid >= 0 && mid != machine_id)
                    machineById(mid)->releaseKv(req);
            }
            // Past the prompt with checkpointing on: restore the
            // KV-cache from the in-memory store instead of
            // recomputing the whole context (SIV-E).
            if (config_.kvCheckpointing && req->generated > 0 &&
                restoreFromCheckpoint(req)) {
                ++checkpointRestores_;
                continue;
            }
            req->resetForRestart();
            ++restarts_;
            cls_->onArrival(req, /*force_admit=*/true);
            continue;
        }
        // Requests not yet split off this machine but destined for
        // it: decode locally instead.
        if (req->tokenMachine == machine_id &&
            req->promptMachine != machine_id) {
            req->tokenMachine = -1;
        }
    }
}

void
Cluster::recoverMachine(int machine_id)
{
    engine::Machine* machine = machineById(machine_id);
    if (!machine->failed())
        return;
    // The machine rejoins empty: fresh queues, zero KV, original
    // pool identity. The CLS's JSQ signals immediately favour it.
    machine->recover();
    cls_->rejoin(machine_id);
}

void
Cluster::onTransferAbort(engine::LiveRequest* request)
{
    if (request->terminal())
        return;
    // The retry budget is spent; fall back to the paper's blunt
    // policy and recompute the prompt from scratch. Restarts bypass
    // admission control - the request was already accepted.
    request->resetForRestart();
    ++restarts_;
    cls_->onArrival(request, /*force_admit=*/true);
}

bool
Cluster::restoreFromCheckpoint(engine::LiveRequest* request)
{
    engine::Machine* host = cls_->pickRecoveryTokenMachine();
    if (!host || host->failed())
        return false;
    if (!host->reserveKv(request, request->contextTokens() + 1))
        return false;
    // The generated-token history survives; only the cache placement
    // changes. Bump the epoch so stale in-flight events drop.
    ++request->restartEpoch;
    request->phase = engine::RequestPhase::kTransferring;
    request->tokenMachine = host->id();
    const double bytes = static_cast<double>(request->contextTokens()) *
                         static_cast<double>(llm_.kvBytesPerToken()) /
                         config_.kvCompressionRatio;
    const auto restore_us =
        sim::secondsToUs(bytes / (config_.checkpointRestoreGBps * 1e9));
    const std::uint32_t epoch = request->restartEpoch;
    simulator_.scheduleAfter(restore_us, [this, request, host, epoch] {
        if (request->restartEpoch != epoch || host->failed()) {
            // The host died during the restore; the failure handler
            // already rerouted the request.
            return;
        }
        host->acceptTransferred(request);
    });
    return true;
}

engine::Machine*
Cluster::machineById(int id)
{
    if (id < 0 || id >= static_cast<int>(machines_.size()))
        sim::panic("Cluster: bad machine id " + std::to_string(id));
    return machines_[static_cast<std::size_t>(id)].get();
}

RunReport
Cluster::run(const workload::Trace& trace)
{
    if (ran_)
        sim::fatal("Cluster::run is one-shot; build a fresh cluster");
    ran_ = true;

    live_.reserve(trace.size());
    for (const auto& spec : trace) {
        auto req = std::make_unique<engine::LiveRequest>();
        req->spec = spec;
        live_.push_back(std::move(req));
        engine::LiveRequest* ptr = live_.back().get();
        simulator_.schedule(spec.arrival, [this, ptr] {
            if (!cls_->onArrival(ptr)) {
                ptr->phase = engine::RequestPhase::kRejected;
                ++rejected_;
            }
        });
    }

    simulator_.run();

    std::size_t unfinished = 0;
    for (const auto& req : live_) {
        if (!req->terminal())
            ++unfinished;
    }
    if (unfinished > 0) {
        sim::fatal("Cluster: " + std::to_string(unfinished) +
                   " requests never completed (deadlock)");
    }

    RunReport report;
    report.requests = results_;
    report.submitted = trace.size();
    report.simulatedUs = simulator_.now();
    report.footprint = design_.footprint();
    report.transfers = engine_.stats();
    report.mixedRoutes = cls_->mixedPoolRoutes();
    report.poolTransitions = cls_->poolTransitions();
    report.restarts = restarts_;
    report.checkpointRestores = checkpointRestores_;
    report.rejected = rejected_;
    report.rejoins = cls_->rejoins();

    auto fold = [&](engine::Machine& m, PoolReport& pool) {
        m.finalizeStats();
        const auto& s = m.stats();
        pool.machines += 1;
        pool.busyUs += s.busyUs;
        pool.iterations += s.iterations;
        pool.energyWh += s.energyWh;
        pool.promptTokensProcessed += s.promptTokensProcessed;
        pool.tokensGenerated += s.tokensGenerated;
        pool.activeTokens.merge(s.activeTokens.histogram());
        report.preemptions += m.mls().preemptionCount();
    };
    for (int i = 0; i < design_.numPrompt; ++i)
        fold(*machines_[static_cast<std::size_t>(i)], report.promptPool);
    for (int i = design_.numPrompt; i < design_.machines(); ++i)
        fold(*machines_[static_cast<std::size_t>(i)], report.tokenPool);

    return report;
}

}  // namespace splitwise::core
