#include "core/cluster.h"

#include <algorithm>
#include <string>

#include "core/ingress.h"
#include "core/recording.h"
#include "sim/clock.h"
#include "sim/log.h"

namespace splitwise::core {

namespace {

/** Build the iteration-pricing model for one machine spec. */
std::unique_ptr<model::PerfModel>
buildPerfModel(const model::LlmConfig& llm, const hw::MachineSpec& spec,
               bool piecewise)
{
    auto analytical = std::make_unique<model::AnalyticalPerfModel>(llm, spec);
    if (!piecewise)
        return analytical;
    return model::PiecewiseLinearPerfModel::fit(*analytical);
}

}  // namespace

Cluster::Cluster(model::LlmConfig llm, ClusterDesign design, SimConfig config)
    : llm_(std::move(llm)), design_(std::move(design)), config_(config),
      engine_(simulator_, llm_, config.layerwiseThresholdTokens,
              config.kvCompressionRatio)
{
    if (design_.numPrompt <= 0)
        sim::fatal("Cluster: design needs at least one prompt machine");
    if (design_.splitwise && design_.numToken <= 0)
        sim::fatal("Cluster: Splitwise design needs token machines");

    results_.setSketchMode(config_.sketchLatencies);

    // Token machines are "full" once another resident would push
    // their TBT past the median SLO bound (Table VI: 1.25x the
    // uncontended DGX-A100 reference).
    if (config_.cls.tokenSloTbtMs == 0.0) {
        const SloChecker reference(llm_);
        config_.cls.tokenSloTbtMs = 1.25 * reference.refTbtMs(1200);
    }

    engine::Machine::Callbacks callbacks;
    callbacks.onPromptDone = [this](engine::Machine& m,
                                    engine::LiveRequest* req,
                                    sim::TimeUs prompt_compute) {
        engine_.startTransfer(req, &m, machineById(req->tokenMachine),
                              prompt_compute, nullptr);
    };
    callbacks.onRequestDone = [this](engine::Machine&,
                                     engine::LiveRequest* req) {
        const metrics::RequestResult result = req->result();
        results_.add(result);
#if SPLITWISE_TELEMETRY_ENABLED
        if (spans_) {
            spans_->complete(req->spec.id, simulator_.now(),
                             worstSlowdown(result));
        }
#endif
        if (liveDone_)
            liveDone_(req);
        // The machine dropped every reference before this callback
        // (mls.finish ran, KV released); the record and span are
        // folded, so the slot can recycle for a future arrival.
        pool_.release(req);
    };
    callbacks.transferInterference =
        [this](engine::Machine& m, engine::LiveRequest* req,
               sim::TimeUs prompt_compute) {
            return engine_.interferenceFor(m, req, prompt_compute);
        };
    callbacks.onMemoryFreed = [this](engine::Machine& m) {
        engine_.onMemoryFreed(&m);
    };
    callbacks.onIterationEnd = [this](engine::Machine& m) {
        if (cls_)
            cls_->onIterationEnd(m);
    };
    callbacks.onPrefillComplete = [this](engine::Machine& m,
                                         engine::LiveRequest* req) {
        if (policy_)
            policy_->onPrefillComplete(m, *req);
    };

    auto build_pool = [&](const hw::MachineSpec& spec, int count,
                          std::vector<engine::Machine*>& out) {
        if (count <= 0)
            return;
        perfModels_.push_back(
            buildPerfModel(llm_, spec, config_.usePiecewisePerfModel));
        memoryModels_.push_back(std::make_unique<model::MemoryModel>(
            llm_, spec, config_.memoryUtilFraction));
        const auto* perf = perfModels_.back().get();
        const auto* memory = memoryModels_.back().get();
        for (int i = 0; i < count; ++i) {
            const int id = static_cast<int>(machines_.size());
            machines_.push_back(std::make_unique<engine::Machine>(
                simulator_, id, spec, *perf, *memory, config_.mls,
                callbacks));
            engine_.registerMachine(machines_.back().get());
            out.push_back(machines_.back().get());
        }
    };

    std::vector<engine::Machine*> prompt_pool;
    std::vector<engine::Machine*> token_pool;
    build_pool(design_.promptSpec, design_.numPrompt, prompt_pool);
    build_pool(design_.tokenSpec, design_.numToken, token_pool);

    cls_ = std::make_unique<ClusterScheduler>(
        simulator_, config_.cls, prompt_pool, token_pool, design_.splitwise);

    policy_ = sched::makePolicy(config_.policy);
    if (policy_->kind() != sched::PolicyKind::kDefault) {
        // The default policy is pure identity; skipping its routing
        // hook keeps the default path exactly the pre-seam code.
        std::vector<engine::Machine*> all_machines;
        all_machines.reserve(machines_.size());
        for (const auto& m : machines_)
            all_machines.push_back(m.get());
        policy_->bind(all_machines);
        cls_->setPolicy(policy_.get());
    }

    engine_.setRetryPolicy(config_.kvRetry);
    engine_.setOnAbort(
        [this](engine::LiveRequest* req) { onTransferAbort(req); });

    pool_.setRecycling(config_.requestRecycling);

    setupTelemetry();
}

void
Cluster::setupTelemetry()
{
    // Fault/recovery counters (owned cells: hot paths bump them
    // directly, the report and sampler read the same values).
    restarts_ = registry_.counter("restarts");
    checkpointRestores_ = registry_.counter("checkpoint_restores");
    rejected_ = registry_.counter("rejected");

    // Scheduler and transfer-engine stats stay where they are; the
    // registry reads them through callbacks so the existing structs
    // need no restructuring.
    registry_.addCounterFn("rejoins", [this] { return cls_->rejoins(); });
    registry_.addCounterFn("shed_requests",
                           [this] { return cls_->shedRequests(); });
    registry_.addCounterFn("mixed_routes",
                           [this] { return cls_->mixedPoolRoutes(); });
    registry_.addCounterFn("pool_transitions",
                           [this] { return cls_->poolTransitions(); });
    registry_.addCounterFn("kv_transfers",
                           [this] { return engine_.stats().transfers; });
    registry_.addCounterFn("kv_retries",
                           [this] { return engine_.stats().transferRetries; });
    registry_.addCounterFn("kv_faults",
                           [this] { return engine_.stats().transferFaults; });
    registry_.addCounterFn("kv_timeouts", [this] {
        return engine_.stats().transferTimeouts;
    });
    registry_.addCounterFn("kv_aborts",
                           [this] { return engine_.stats().transferAborts; });
    registry_.addCounterFn("kv_memory_stalls",
                           [this] { return engine_.stats().memoryStalls; });
    registry_.addCounterFn("tokens_generated", [this] {
        std::uint64_t total = 0;
        for (const auto& m : machines_)
            total += static_cast<std::uint64_t>(m->stats().tokensGenerated);
        return total;
    });
    registry_.addCounterFn("prompt_tokens_processed", [this] {
        std::uint64_t total = 0;
        for (const auto& m : machines_) {
            total += static_cast<std::uint64_t>(
                m->stats().promptTokensProcessed);
        }
        return total;
    });

    // Prefix-cache counters exist only under a non-default policy so
    // default-policy time-series columns stay byte-identical.
    if (config_.policy.kind != sched::PolicyKind::kDefault) {
        auto prefix_sum = [this](auto pick) {
            return [this, pick] {
                std::uint64_t total = 0;
                for (const auto& m : machines_)
                    total += pick(m->mls().blocks().prefixStats());
                return total;
            };
        };
        registry_.addCounterFn(
            "prefix_hits", prefix_sum([](const engine::PrefixCacheStats& s) {
                return s.hits;
            }));
        registry_.addCounterFn(
            "prefix_misses",
            prefix_sum([](const engine::PrefixCacheStats& s) {
                return s.misses;
            }));
        registry_.addCounterFn(
            "prefix_evictions",
            prefix_sum([](const engine::PrefixCacheStats& s) {
                return s.evictions;
            }));
        registry_.addCounterFn(
            "prefix_hit_tokens",
            prefix_sum([](const engine::PrefixCacheStats& s) {
                return static_cast<std::uint64_t>(s.hitTokens);
            }));
    }

    // Instantaneous cluster gauges.
    registry_.addGauge("queued_prompt_tokens", [this] {
        return static_cast<double>(cls_->queuedPromptTokens());
    });
    registry_.addGauge("active_batch_tokens", [this] {
        std::int64_t total = 0;
        for (const auto& m : machines_)
            total += m->stats().activeTokens.value();
        return static_cast<double>(total);
    });
    registry_.addGauge("kv_tokens_used", [this] {
        std::int64_t total = 0;
        for (const auto& m : machines_)
            total += m->tokenLoadTokens();
        return static_cast<double>(total);
    });
    registry_.addGauge("inflight_transfers", [this] {
        return static_cast<double>(engine_.inFlightTransfers());
    });
    registry_.addGauge("waiting_transfers", [this] {
        return static_cast<double>(engine_.waitingTransfers());
    });
    registry_.addGauge("prompt_pool_machines", [this] {
        return static_cast<double>(cls_->poolSize(PoolType::kPrompt));
    });
    registry_.addGauge("token_pool_machines", [this] {
        return static_cast<double>(cls_->poolSize(PoolType::kToken));
    });
    registry_.addGauge("mixed_pool_machines", [this] {
        return static_cast<double>(cls_->poolSize(PoolType::kMixed));
    });
    auto pool_power = [this](int lo, int hi) {
        double watts = 0.0;
        for (int i = lo; i < hi; ++i)
            watts += machines_[static_cast<std::size_t>(i)]->currentPowerWatts();
        return watts;
    };
    registry_.addGauge("power_total_w", [this, pool_power] {
        return pool_power(0, design_.machines());
    });
    registry_.addGauge("power_prompt_pool_w", [this, pool_power] {
        return pool_power(0, design_.numPrompt);
    });
    registry_.addGauge("power_token_pool_w", [this, pool_power] {
        return pool_power(design_.numPrompt, design_.machines());
    });

    if (config_.telemetry.perMachineSeries) {
        for (const auto& m_ptr : machines_) {
            engine::Machine* m = m_ptr.get();
            const std::string prefix = "m" + std::to_string(m->id()) + "_";
            registry_.addGauge(prefix + "queue_tokens", [m] {
                return static_cast<double>(m->promptQueueDepthTokens());
            });
            registry_.addGauge(prefix + "kv_tokens", [m] {
                return static_cast<double>(m->tokenLoadTokens());
            });
            registry_.addGauge(prefix + "active_tokens", [m] {
                return static_cast<double>(m->stats().activeTokens.value());
            });
            registry_.addGauge(prefix + "power_w",
                               [m] { return m->currentPowerWatts(); });
        }
    }

    if (config_.telemetry.traceEnabled) {
        trace_ = std::make_unique<telemetry::TraceRecorder>();
        for (const auto& m : machines_) {
            m->setTrace(trace_.get());
            trace_->setTrackName(
                telemetry::TraceRecorder::machineTrack(m->id()),
                "m" + std::to_string(m->id()) + " " + m->spec().name + " (" +
                    poolTypeName(cls_->originOf(m->id())) + ")");
        }
        engine_.setTrace(trace_.get());
        cls_->setTrace(trace_.get());
    }

#if SPLITWISE_TELEMETRY_ENABLED
    if (config_.telemetry.spanTracking) {
        telemetry::SpanTrackerConfig span_config;
        span_config.exemplarK = std::max(0, config_.telemetry.exemplarK);
        span_config.flightRecorderCapacity = static_cast<std::size_t>(
            std::max(0, config_.telemetry.flightRecorderCapacity));
        spans_ = std::make_unique<telemetry::SpanTracker>(span_config);
        sloRef_ = std::make_unique<SloChecker>(llm_);
        for (const auto& m : machines_)
            m->setSpans(spans_.get());
        engine_.setSpans(spans_.get());
        cls_->setSpans(spans_.get());
    }
#endif
}

double
Cluster::worstSlowdown(const metrics::RequestResult& result) const
{
    // Mirrors SloChecker::evaluate's per-request slowdown definitions
    // so an exemplar's rank explains its SLO verdict directly.
    double slowdown = result.ttftMs / sloRef_->refTtftMs(result.promptTokens);
    if (result.outputTokens > 1) {
        const std::int64_t mean_ctx =
            result.promptTokens + result.outputTokens / 2;
        slowdown =
            std::max(slowdown, result.tbtMs / sloRef_->refTbtMs(mean_ctx));
    }
    workload::Request spec;
    spec.promptTokens = result.promptTokens;
    spec.outputTokens = result.outputTokens;
    spec.arrival = result.arrival;
    return std::max(slowdown, result.e2eMs / sloRef_->refE2eMs(spec));
}

void
Cluster::checkFaultSchedulable(int machine_id) const
{
    if (ran_)
        sim::fatal("Cluster: fault scheduling must precede run()");
    if (machine_id < 0 || machine_id >= design_.machines())
        sim::fatal("Cluster: bad machine id in fault schedule");
}

void
Cluster::scheduleFailure(int machine_id, sim::TimeUs at)
{
    checkFaultSchedulable(machine_id);
    simulator_.post(at, [this, machine_id] { failMachine(machine_id); },
                    kFaultEventPriority);
}

void
Cluster::scheduleFailure(int machine_id, sim::TimeUs at,
                         sim::TimeUs downtime_us)
{
    checkFaultSchedulable(machine_id);
    if (downtime_us <= 0)
        sim::fatal("Cluster::scheduleFailure: downtime must be positive");
    simulator_.post(at, [this, machine_id] { failMachine(machine_id); },
                    kFaultEventPriority);
    simulator_.post(at + downtime_us,
                    [this, machine_id] { recoverMachine(machine_id); },
                    kFaultEventPriority);
}

void
Cluster::scheduleSlowdown(int machine_id, sim::TimeUs at,
                          sim::TimeUs duration_us, double factor)
{
    checkFaultSchedulable(machine_id);
    if (factor <= 0.0)
        sim::fatal("Cluster::scheduleSlowdown: factor must be positive");
    simulator_.post(at, [this, machine_id, factor] {
        machineById(machine_id)->setPerfScale(factor);
    }, kFaultEventPriority);
    simulator_.post(at + duration_us, [this, machine_id] {
        machineById(machine_id)->setPerfScale(1.0);
    }, kFaultEventPriority);
}

void
Cluster::scheduleLinkFault(int machine_id, sim::TimeUs at,
                           sim::TimeUs duration_us)
{
    checkFaultSchedulable(machine_id);
    engine_.injectLinkFault(machine_id, at, at + duration_us);
}

void
Cluster::scheduleLinkDegrade(int machine_id, sim::TimeUs at,
                             sim::TimeUs duration_us, double bandwidth_factor)
{
    checkFaultSchedulable(machine_id);
    engine_.injectLinkDegrade(machine_id, at, at + duration_us,
                              bandwidth_factor);
}

void
Cluster::failMachine(int machine_id)
{
    engine::Machine* machine = machineById(machine_id);
    if (machine->failed())
        return;
    // Order matters: take the machine out of routing first, then
    // drop its state, then restart the stranded requests on the
    // survivors.
    cls_->markFailed(machine_id);
    machine->fail();
    // The crash wiped the machine's cached prefixes with its KV;
    // drop the policy's directory entries so follow-up session turns
    // miss cleanly instead of routing to an empty cache.
    policy_->onMachineFailed(machine_id);
    sim::inform("machine failed", {{"machine", std::to_string(machine_id)}});

    // A failure can empty routing entirely while the controller holds
    // machines in standby; bring one straight back so the stranded
    // restarts below have somewhere to land.
    if (cls_->liveMachines() == 0) {
        const int standby_id = cls_->anyStandby();
        engine::Machine* standby = machineById(standby_id);
        if (standby->parked())
            standby->unpark();
        cls_->restore(standby_id);
        ++emergencyRestores_;
        sim::inform("emergency restore",
                    {{"machine", std::to_string(standby_id)}});
    }

    // Pool slot order is recycling order, not arrival order; collect
    // the stranded requests first and restart them sorted by id
    // (monotone in arrival order) so recovery placement matches the
    // old trace-order walk exactly.
    std::vector<engine::LiveRequest*> stranded_reqs;
    pool_.forEachLive([&](engine::LiveRequest& live_req) {
        engine::LiveRequest* req = &live_req;
        if (req->terminal())
            return;
        const bool stranded =
            ((req->phase == engine::RequestPhase::kPromptQueued ||
              req->phase == engine::RequestPhase::kPromptRunning) &&
             req->promptMachine == machine_id) ||
            (req->phase == engine::RequestPhase::kTransferring &&
             (req->promptMachine == machine_id ||
              req->tokenMachine == machine_id)) ||
            (req->phase == engine::RequestPhase::kDecoding &&
             req->tokenMachine == machine_id);
        if (stranded) {
            stranded_reqs.push_back(req);
            return;
        }
        // Requests not yet split off this machine but destined for
        // it: decode locally instead.
        if (req->tokenMachine == machine_id &&
            req->promptMachine != machine_id) {
            req->tokenMachine = -1;
        }
    });
    std::sort(stranded_reqs.begin(), stranded_reqs.end(),
              [](const engine::LiveRequest* a, const engine::LiveRequest* b) {
                  return a->spec.id < b->spec.id;
              });
    for (engine::LiveRequest* req : stranded_reqs) {
        // Log lines from the restart path (admission, KV
        // release, checkpoint restore) identify their request.
        sim::LogRequestScope log_scope(req->spec.id);
        // Release any KV copy a surviving machine still holds
        // (e.g. the prompt machine of an in-flight transfer).
        for (int mid : {req->promptMachine, req->tokenMachine}) {
            if (mid >= 0 && mid != machine_id)
                machineById(mid)->releaseKv(req);
        }
        // Past the prompt with checkpointing on: restore the
        // KV-cache from the in-memory store instead of
        // recomputing the whole context (SIV-E).
        if (config_.kvCheckpointing && req->generated > 0 &&
            restoreFromCheckpoint(req)) {
            checkpointRestores_->add();
            continue;
        }
        // Fold the lost work into a restart-penalty span before
        // re-admission re-opens the queue span.
        TELEM_REQ_RESTART(spans_.get(), req->spec.id, simulator_.now());
        req->resetForRestart();
        restarts_->add();
        cls_->onArrival(req, /*force_admit=*/true);
    }
    // Fault epochs are exactly where fixed-interval sampling
    // under-resolves; snapshot the post-failure state immediately.
    if (sampler_)
        sampler_->sampleNow();
}

void
Cluster::recoverMachine(int machine_id)
{
    engine::Machine* machine = machineById(machine_id);
    if (!machine->failed())
        return;
    // The machine rejoins empty: fresh queues, zero KV, original
    // pool identity. The CLS's JSQ signals immediately favour it.
    machine->recover();
    cls_->rejoin(machine_id);
    sim::inform("machine rejoined",
                {{"machine", std::to_string(machine_id)},
                 {"pool", poolTypeName(cls_->poolOf(machine_id))}});
    if (sampler_)
        sampler_->sampleNow();
}

void
Cluster::onTransferAbort(engine::LiveRequest* request)
{
    if (request->terminal())
        return;
    // The retry budget is spent; fall back to the paper's blunt
    // policy and recompute the prompt from scratch. Restarts bypass
    // admission control - the request was already accepted.
    sim::LogRequestScope log_scope(request->spec.id);
    sim::inform("transfer retries exhausted; restarting request");
    TELEM_REQ_RESTART(spans_.get(), request->spec.id, simulator_.now());
    request->resetForRestart();
    restarts_->add();
    cls_->onArrival(request, /*force_admit=*/true);
}

bool
Cluster::restoreFromCheckpoint(engine::LiveRequest* request)
{
    engine::Machine* host = cls_->pickRecoveryTokenMachine();
    if (!host || host->failed())
        return false;
    if (!host->reserveKv(request, request->contextTokens() + 1))
        return false;
    // The generated-token history survives; only the cache placement
    // changes. Bump the epoch so stale in-flight events drop.
    ++request->restartEpoch;
    request->phase = engine::RequestPhase::kTransferring;
    request->tokenMachine = host->id();
    TELEM_TRANSITION(trace_.get(),
                     telemetry::TraceRecorder::requestTrack(request->spec.id),
                     "kv_restore", simulator_.now(),
                     {{"host", host->id()}});
    // The generated work survives, so this is a transfer span (the
    // restore pays a wire move), not a restart penalty.
    TELEM_REQ_PHASE(spans_.get(), request->spec.id,
                    telemetry::SpanPhase::kKvTransfer, simulator_.now());
    const double bytes = static_cast<double>(request->contextTokens()) *
                         static_cast<double>(llm_.kvBytesPerToken()) /
                         config_.kvCompressionRatio;
    const auto restore_us =
        sim::secondsToUs(bytes / (config_.checkpointRestoreGBps * 1e9));
    const std::uint32_t epoch = request->restartEpoch;
    simulator_.postAfter(restore_us, [this, request, host, epoch] {
        if (request->restartEpoch != epoch || host->failed()) {
            // The host died during the restore; the failure handler
            // already rerouted the request.
            return;
        }
        host->acceptTransferred(request);
    });
    return true;
}

engine::Machine*
Cluster::machineById(int id)
{
    if (id < 0 || id >= static_cast<int>(machines_.size()))
        sim::panic("Cluster: bad machine id " + std::to_string(id));
    return machines_[static_cast<std::size_t>(id)].get();
}

void
Cluster::admitArrival(const workload::Request& spec)
{
    engine::LiveRequest* req = pool_.acquire();
    req->spec = spec;
    ++submitted_;
    if (!cls_->onArrival(req)) {
        req->phase = engine::RequestPhase::kRejected;
        rejected_->add();
        if (liveRejected_)
            liveRejected_(req);
        // Shed before any work ran: nothing holds a pointer (no
        // route, no span), so the slot recycles immediately.
        pool_.release(req);
    }
}

void
Cluster::postNextArrival()
{
    workload::Request spec;
    if (!stream_->next(spec))
        return;
    // Posting into the past panics in the simulator, which doubles
    // as the stream-ordering check: arrivals must be non-decreasing.
    simulator_.post(spec.arrival, [this, spec] {
        admitArrival(spec);
        postNextArrival();
    }, kArrivalEventPriority);
}

RunReport
Cluster::run(const workload::Trace& trace)
{
    workload::VectorTraceStream stream(trace);
    return run(stream);
}

void
Cluster::beginRun()
{
    if (ran_)
        sim::fatal("Cluster::run is one-shot; build a fresh cluster");
    ran_ = true;
}

void
Cluster::installSampler()
{
    if (config_.telemetry.sampleIntervalUs > 0) {
        sampler_ = std::make_unique<telemetry::TimeSeriesSampler>(
            simulator_, registry_, config_.telemetry.sampleIntervalUs);
        sampler_->install();
    }
}

RunReport
Cluster::run(workload::TraceStream& stream)
{
    beginRun();

    // Lazy arrival chain: exactly one pending arrival event at any
    // time, each admitting its request and pulling the next. The
    // event queue and the live set stay O(in-flight) regardless of
    // trace length.
    stream_ = &stream;
    postNextArrival();

    installSampler();

    simulator_.run();
    stream_ = nullptr;

    return buildReport();
}

RunReport
Cluster::buildReport()
{
    if (pool_.liveCount() > 0) {
        sim::fatal("Cluster: " + std::to_string(pool_.liveCount()) +
                   " requests never completed (deadlock)");
    }

    RunReport report;
    report.requests = results_;
    report.submitted = submitted_;
    report.simulatedUs = simulator_.now();
    report.footprint = design_.footprint();
    report.transfers = engine_.stats();
    report.mixedRoutes = cls_->mixedPoolRoutes();
    report.poolTransitions = cls_->poolTransitions();
    report.restarts = restarts_->value();
    report.checkpointRestores = checkpointRestores_->value();
    report.rejected = rejected_->value();
    report.rejoins = cls_->rejoins();
    report.control.emergencyRestores = emergencyRestores_;
    if (spans_)
        report.breakdown = spans_->breakdown();

    if (policy_->kind() != sched::PolicyKind::kDefault) {
        report.prefixCache.enabled = true;
        for (const auto& m : machines_) {
            const auto& ps = m->mls().blocks().prefixStats();
            report.prefixCache.hits += ps.hits;
            report.prefixCache.misses += ps.misses;
            report.prefixCache.evictions += ps.evictions;
            report.prefixCache.stores += ps.stores;
            report.prefixCache.hitTokens += ps.hitTokens;
        }
        const sched::PolicyStats pstats = policy_->stats();
        report.prefixCache.directoryMisses = pstats.directoryMisses;
        report.prefixCache.affinityRoutes = pstats.affinityRoutes;
        report.prefixCache.directorySize =
            static_cast<std::uint64_t>(pstats.directorySize);
    }

    if (sampler_) {
        // The final row lands at end-of-run, so cumulative columns
        // (e.g. tokens_generated) close exactly on the aggregates.
        sampler_->finish();
        report.timeseries = sampler_->series();
    }

    auto fold = [&](engine::Machine& m, PoolReport& pool) {
        m.finalizeStats();
        const auto& s = m.stats();
        pool.machines += 1;
        pool.busyUs += s.busyUs;
        pool.iterations += s.iterations;
        pool.energyWh += s.energyWh;
        pool.promptTokensProcessed += s.promptTokensProcessed;
        pool.tokensGenerated += s.tokensGenerated;
        pool.parkedUs += s.parkedUs;
        pool.downUs += s.downUs;
        pool.poweredUs += s.poweredUs;
        pool.idleEnergyWh += s.idleEnergyWh;
        pool.costDollars += sim::usToSeconds(s.poweredUs) / 3600.0 *
                            m.spec().costPerHour;
        pool.activeTokens.merge(s.activeTokens.histogram());
        report.preemptions += m.mls().preemptionCount();
    };
    for (int i = 0; i < design_.numPrompt; ++i)
        fold(*machines_[static_cast<std::size_t>(i)], report.promptPool);
    for (int i = design_.numPrompt; i < design_.machines(); ++i)
        fold(*machines_[static_cast<std::size_t>(i)], report.tokenPool);

    return report;
}

void
Cluster::cancelRequest(std::uint64_t request_id)
{
    // At most one live request carries the id (ids are unique and
    // the scan skips terminal ones), so visit order is immaterial
    // and the operation is deterministic.
    pool_.forEachLive([&](engine::LiveRequest& req) {
        if (req.spec.id != request_id || req.terminal())
            return;
        // Clamp instead of tearing down: the request ends naturally
        // at its next token boundary, so every downstream path
        // (spans, KV release, transfer completion) runs unchanged.
        // Never below one token — a request that produced nothing
        // yet still yields its prompt token, keeping accounting and
        // the invariant checker consistent. Idempotent: a second
        // cancel sees the same or a smaller budget and never
        // extends it.
        const std::int64_t floor = std::max<std::int64_t>(req.generated + 1, 1);
        req.spec.outputTokens = std::min(req.spec.outputTokens, floor);
    });
}

void
Cluster::scheduleCancel(std::uint64_t request_id, sim::TimeUs at)
{
    if (ran_)
        sim::fatal("Cluster: scheduleCancel before run(), not during");
    simulator_.post(at, [this, request_id] { cancelRequest(request_id); },
                    kArrivalEventPriority);
}

RunReport
Cluster::serve(Ingress& ingress, sim::Clock& clock, SessionRecording* capture)
{
    beginRun();
    installSampler();

    // Stream per-token updates out through the ingress callback map.
    for (auto& m : machines_) {
        m->setOnToken([this, &ingress](engine::LiveRequest* req) {
            TokenUpdate update;
            update.requestId = req->spec.id;
            update.tokensGenerated = req->generated;
            update.finished = req->finished();
            update.at = simulator_.now();
            ingress.dispatch(update);
        });
    }
    liveDone_ = [&ingress](engine::LiveRequest* req) {
        ingress.onFinished(req->spec.id);
    };
    liveRejected_ = [this, &ingress](engine::LiveRequest* req) {
        ingress.onRejected(req->spec.id, simulator_.now());
    };

    ingress.beginServe(&clock);

    // Drain the mailbox: stamp each client operation with a strictly
    // increasing simulated time and post it as an ordinary
    // arrival-priority event. Unique stamps give ingress ops a total
    // order all by themselves, so the capture replays bit-exact.
    std::vector<Ingress::Op> ops;
    sim::TimeUs last_stamp = 0;
    auto drain = [&] {
        if (!ingress.takeOps(&ops))
            return;
        for (Ingress::Op& op : ops) {
            if (op.kind == Ingress::Op::Kind::kInspect) {
                // Quiescent by construction — run inline, off the
                // record: inspections never perturb the event order.
                Ingress::runInspect(op, *this);
                continue;
            }
            sim::TimeUs t = clock.now();
            if (t <= simulator_.now())
                t = simulator_.now() + 1;
            if (t <= last_stamp)
                t = last_stamp + 1;
            last_stamp = t;
            if (op.kind == Ingress::Op::Kind::kSubmit) {
                workload::Request spec;
                spec.id = op.id;
                spec.arrival = t;
                spec.promptTokens = op.request.promptTokens;
                spec.outputTokens = op.request.outputTokens;
                spec.priority = op.request.priority;
                spec.session = op.request.session;
                spec.turn = op.request.turn;
                if (capture)
                    capture->requests.push_back(spec);
                ingress.onAdmitQueued(op.id, std::move(op.onToken));
                simulator_.post(t, [this, spec] { admitArrival(spec); },
                                kArrivalEventPriority);
            } else {
                if (capture)
                    capture->cancels.push_back({t, op.id});
                const std::uint64_t id = op.id;
                simulator_.post(t, [this, id] { cancelRequest(id); },
                                kArrivalEventPriority);
            }
        }
    };

    for (;;) {
        drain();
        if (simulator_.pendingEvents() == 0) {
            if (ingress.shutdownRequested() && !ingress.hasQueued())
                break;
            clock.waitForWork();
            continue;
        }
        const sim::TimeUs next = simulator_.eventQueue().nextTime();
        if (!clock.waitUntil(next))
            continue;  // Woken early: fresh ingress ops to stamp.
        // Fire the whole timestamp batch before draining again, so
        // new ingress ops can only land strictly after it — the
        // quiescent-point rule that makes live == replay.
        while (simulator_.pendingEvents() > 0 &&
               simulator_.eventQueue().nextTime() == next) {
            simulator_.step();
        }
    }

    liveDone_ = nullptr;
    liveRejected_ = nullptr;
    for (auto& m : machines_)
        m->setOnToken(nullptr);
    RunReport report = buildReport();
    ingress.endServe(*this);
    return report;
}

}  // namespace splitwise::core
