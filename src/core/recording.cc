#include "core/recording.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/json.h"
#include "sim/log.h"

namespace splitwise::core {

std::string
SessionRecording::toJson() const
{
    JsonValue doc = JsonValue::makeObject();
    JsonValue reqs = JsonValue::makeArray();
    for (const workload::Request& r : requests) {
        JsonValue row = JsonValue::makeObject();
        row.set("id", JsonValue(static_cast<std::int64_t>(r.id)));
        row.set("arrival_us", JsonValue(static_cast<std::int64_t>(r.arrival)));
        row.set("prompt_tokens", JsonValue(r.promptTokens));
        row.set("output_tokens", JsonValue(r.outputTokens));
        row.set("priority", JsonValue(static_cast<std::int64_t>(r.priority)));
        row.set("session", JsonValue(static_cast<std::int64_t>(r.session)));
        row.set("turn", JsonValue(static_cast<std::int64_t>(r.turn)));
        reqs.push(std::move(row));
    }
    doc.set("requests", std::move(reqs));
    JsonValue cans = JsonValue::makeArray();
    for (const Cancel& c : cancels) {
        JsonValue row = JsonValue::makeObject();
        row.set("at_us", JsonValue(static_cast<std::int64_t>(c.at)));
        row.set("id", JsonValue(static_cast<std::int64_t>(c.requestId)));
        cans.push(std::move(row));
    }
    doc.set("cancels", std::move(cans));
    return doc.dump();
}

SessionRecording
SessionRecording::fromJson(const std::string& json)
{
    const JsonValue doc = JsonValue::parse(json);
    SessionRecording rec;
    const JsonValue& reqs = doc.at("requests");
    rec.requests.reserve(reqs.size());
    for (const JsonValue& row : reqs.items()) {
        workload::Request r;
        r.id = static_cast<std::uint64_t>(row.at("id").asInt());
        r.arrival = row.at("arrival_us").asInt();
        r.promptTokens = row.at("prompt_tokens").asInt();
        r.outputTokens = row.at("output_tokens").asInt();
        r.priority = static_cast<int>(row.at("priority").asInt());
        r.session = static_cast<std::uint64_t>(row.at("session").asInt());
        r.turn = static_cast<int>(row.at("turn").asInt());
        rec.requests.push_back(r);
    }
    const JsonValue& cans = doc.at("cancels");
    rec.cancels.reserve(cans.size());
    for (const JsonValue& row : cans.items()) {
        Cancel c;
        c.at = row.at("at_us").asInt();
        c.requestId = static_cast<std::uint64_t>(row.at("id").asInt());
        rec.cancels.push_back(c);
    }
    return rec;
}

void
SessionRecording::save(const std::string& path) const
{
    const std::string json = toJson();
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        sim::fatal("SessionRecording: cannot write " + path);
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
}

SessionRecording
SessionRecording::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("SessionRecording: cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromJson(buffer.str());
}

}  // namespace splitwise::core
