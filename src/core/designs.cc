#include "core/designs.h"

namespace splitwise::core {

hw::FleetFootprint
ClusterDesign::footprint() const
{
    hw::FleetFootprint fleet;
    fleet.add(promptSpec, numPrompt);
    fleet.add(tokenSpec, numToken);
    return fleet;
}

ClusterDesign
ClusterDesign::withCounts(int num_prompt, int num_token) const
{
    ClusterDesign d = *this;
    d.numPrompt = num_prompt;
    d.numToken = num_token;
    return d;
}

ClusterDesign
baselineA100(int n)
{
    return {"Baseline-A100", hw::dgxA100(), n, hw::dgxA100(), 0, false};
}

ClusterDesign
baselineH100(int n)
{
    return {"Baseline-H100", hw::dgxH100(), n, hw::dgxH100(), 0, false};
}

ClusterDesign
splitwiseAA(int num_prompt, int num_token)
{
    return {"Splitwise-AA", hw::dgxA100(), num_prompt, hw::dgxA100(),
            num_token, true};
}

ClusterDesign
splitwiseHH(int num_prompt, int num_token)
{
    return {"Splitwise-HH", hw::dgxH100(), num_prompt, hw::dgxH100(),
            num_token, true};
}

ClusterDesign
splitwiseHA(int num_prompt, int num_token)
{
    return {"Splitwise-HA", hw::dgxH100(), num_prompt, hw::dgxA100(),
            num_token, true};
}

ClusterDesign
splitwiseHHcap(int num_prompt, int num_token)
{
    return {"Splitwise-HHcap", hw::dgxH100(), num_prompt, hw::dgxH100Capped(),
            num_token, true};
}

}  // namespace splitwise::core
