#include "core/report_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/json.h"
#include "sim/log.h"

namespace splitwise::core {

namespace {

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/**
 * Latency distribution emission goes through the mode-agnostic
 * LatencyStats view: exact runs serialize the same digits as the old
 * Summary-based path (byte-identical reports), sketch runs serialize
 * the sketch estimates with the same schema.
 */
void
summaryJson(std::ostringstream& out, const char* name,
            const metrics::RequestMetrics::LatencyStats& s)
{
    out << '"' << name << "\":{\"count\":" << s.count
        << ",\"mean\":" << num(s.mean) << ",\"p50\":" << num(s.p50)
        << ",\"p90\":" << num(s.p90) << ",\"p99\":" << num(s.p99)
        << ",\"max\":" << num(s.max) << '}';
}

void
poolJson(std::ostringstream& out, const char* name, const PoolReport& pool)
{
    out << '"' << name << "\":{\"machines\":" << pool.machines
        << ",\"busy_s\":" << num(sim::usToSeconds(pool.busyUs))
        << ",\"iterations\":" << pool.iterations
        << ",\"energy_wh\":" << num(pool.energyWh)
        << ",\"prompt_tokens\":" << pool.promptTokensProcessed
        << ",\"tokens_generated\":" << pool.tokensGenerated << '}';
}

void
limitsJson(std::ostringstream& out, const char* name, const SloLimits& l)
{
    out << '"' << name << "\":{\"p50\":" << num(l.p50)
        << ",\"p90\":" << num(l.p90) << ",\"p99\":" << num(l.p99) << '}';
}

}  // namespace

std::string
reportToJson(const RunReport& report, const SloReport* slo)
{
    std::ostringstream out;
    out << '{';
    out << "\"design\":{\"machines\":" << report.footprint.machines
        << ",\"cost_per_hour\":" << num(report.footprint.costPerHour)
        << ",\"power_watts\":" << num(report.footprint.powerWatts) << "},";

    out << "\"requests\":{\"submitted\":" << report.submitted
        << ",\"completed\":" << report.requests.completed()
        << ",\"throughput_rps\":" << num(report.requests.throughputRps())
        << ",\"token_throughput\":" << num(report.requests.tokenThroughput())
        << ',';
    summaryJson(out, "ttft_ms", report.requests.ttftStats());
    out << ',';
    summaryJson(out, "tbt_ms", report.requests.tbtStats());
    out << ',';
    summaryJson(out, "max_tbt_ms", report.requests.maxTbtStats());
    out << ',';
    summaryJson(out, "e2e_ms", report.requests.e2eStats());
    out << "},";

    out << "\"pools\":{";
    poolJson(out, "prompt", report.promptPool);
    out << ',';
    poolJson(out, "token", report.tokenPool);
    out << "},";

    out << "\"transfers\":{\"count\":" << report.transfers.transfers
        << ",\"layerwise\":" << report.transfers.layerwiseTransfers
        << ",\"bytes\":" << report.transfers.bytesMoved
        << ",\"memory_stalls\":" << report.transfers.memoryStalls
        << ",\"faults\":" << report.transfers.transferFaults
        << ",\"timeouts\":" << report.transfers.transferTimeouts
        << ",\"retries\":" << report.transfers.transferRetries
        << ",\"aborts\":" << report.transfers.transferAborts
        << ",\"degraded\":" << report.transfers.degradedTransfers << "},";

    out << "\"scheduler\":{\"mixed_routes\":" << report.mixedRoutes
        << ",\"pool_transitions\":" << report.poolTransitions
        << ",\"preemptions\":" << report.preemptions
        << ",\"restarts\":" << report.restarts
        << ",\"checkpoint_restores\":" << report.checkpointRestores
        << ",\"rejected\":" << report.rejected
        << ",\"rejoins\":" << report.rejoins << '}';

    // Latency attribution: present only when span tracking was on,
    // so existing reports keep their schema.
    if (report.breakdown.enabled) {
        const telemetry::LatencyBreakdown& b = report.breakdown;
        out << ",\"breakdown\":{\"requests\":" << b.requests
            << ",\"e2e_total_ms\":" << num(b.e2eTotalMs)
            << ",\"attributed_total_ms\":" << num(b.attributedTotalMs)
            << ",\"phases\":{";
        bool first = true;
        for (const auto& p : b.phases) {
            if (!first)
                out << ',';
            first = false;
            out << '"' << telemetry::spanPhaseName(p.phase)
                << "\":{\"requests\":" << p.requests
                << ",\"total_ms\":" << num(p.totalMs)
                << ",\"mean\":" << num(p.meanMs) << ",\"p50\":" << num(p.p50Ms)
                << ",\"p99\":" << num(p.p99Ms) << ",\"max\":" << num(p.maxMs)
                << '}';
        }
        out << "}}";
    }

    // Prefix-cache section: present only under a non-default
    // scheduling policy, so default-policy reports (and every
    // existing golden) keep their byte-exact schema.
    if (report.prefixCache.enabled) {
        const PrefixCacheReport& p = report.prefixCache;
        out << ",\"prefix_cache\":{\"hits\":" << p.hits
            << ",\"misses\":" << p.misses
            << ",\"evictions\":" << p.evictions
            << ",\"stores\":" << p.stores
            << ",\"hit_tokens\":" << p.hitTokens
            << ",\"directory_misses\":" << p.directoryMisses
            << ",\"affinity_routes\":" << p.affinityRoutes
            << ",\"directory_size\":" << p.directorySize << '}';
    }

    // Sampled time-series: present only when sampling was on, so
    // telemetry-off reports keep the exact pre-telemetry schema.
    if (!report.timeseries.empty())
        out << ",\"timeseries\":" << report.timeseries.toJson();

    // Control-plane section: present only when an autoscaler drove
    // the run, so uncontrolled reports keep the existing schema.
    if (report.control.enabled) {
        const ControlReport& c = report.control;
        out << ",\"control\":{\"ticks\":" << c.ticks
            << ",\"scale_ups\":" << c.scaleUps
            << ",\"scale_downs\":" << c.scaleDowns
            << ",\"role_flexes\":" << c.roleFlexes
            << ",\"brownout_transitions\":" << c.brownoutTransitions
            << ",\"max_brownout_level\":" << c.maxBrownoutLevel
            << ",\"brownout_s\":" << num(sim::usToSeconds(c.brownoutUs))
            << ",\"power_cap_changes\":" << c.powerCapChanges
            << ",\"emergency_restores\":" << c.emergencyRestores
            << ",\"machine_hours\":" << num(c.machineHours)
            << ",\"cost_dollars\":" << num(c.costDollars)
            << ",\"total_energy_wh\":" << num(c.totalEnergyWh)
            << ",\"slo_attainment\":" << num(c.sloAttainment) << '}';
    }

    if (slo) {
        out << ",\"slo\":{\"pass\":" << (slo->pass ? "true" : "false")
            << ",\"violation\":\"" << slo->violation << "\",";
        limitsJson(out, "ttft_slowdown", slo->ttftSlowdown);
        out << ',';
        limitsJson(out, "tbt_slowdown", slo->tbtSlowdown);
        out << ',';
        limitsJson(out, "e2e_slowdown", slo->e2eSlowdown);
        out << ',';
        limitsJson(out, "max_tbt_slowdown", slo->maxTbtSlowdown);
        out << '}';
    }
    out << '}';
    return out.str();
}

ReportDigest
reportDigestFromJson(const std::string& json)
{
    const JsonValue doc = JsonValue::parse(json);
    ReportDigest d;

    const JsonValue& design = doc.at("design");
    d.machines = static_cast<int>(design.at("machines").asInt());
    d.costPerHour = design.at("cost_per_hour").asNumber();
    d.powerWatts = design.at("power_watts").asNumber();

    const JsonValue& requests = doc.at("requests");
    d.submitted = static_cast<std::uint64_t>(requests.at("submitted").asInt());
    d.completed = static_cast<std::uint64_t>(requests.at("completed").asInt());
    d.throughputRps = requests.at("throughput_rps").asNumber();
    d.ttftP50Ms = requests.at("ttft_ms").at("p50").asNumber();
    d.ttftP99Ms = requests.at("ttft_ms").at("p99").asNumber();
    d.tbtP50Ms = requests.at("tbt_ms").at("p50").asNumber();
    d.maxTbtP99Ms = requests.at("max_tbt_ms").at("p99").asNumber();
    d.e2eP50Ms = requests.at("e2e_ms").at("p50").asNumber();

    const JsonValue& pools = doc.at("pools");
    d.promptPoolTokens = pools.at("prompt").at("tokens_generated").asInt();
    d.tokenPoolTokens = pools.at("token").at("tokens_generated").asInt();

    const JsonValue& transfers = doc.at("transfers");
    auto counter = [](const JsonValue& v) {
        return static_cast<std::uint64_t>(v.asInt());
    };
    d.transfers = counter(transfers.at("count"));
    d.transferFaults = counter(transfers.at("faults"));
    d.transferTimeouts = counter(transfers.at("timeouts"));
    d.transferRetries = counter(transfers.at("retries"));
    d.transferAborts = counter(transfers.at("aborts"));

    const JsonValue& scheduler = doc.at("scheduler");
    d.mixedRoutes = counter(scheduler.at("mixed_routes"));
    d.preemptions = counter(scheduler.at("preemptions"));
    d.restarts = counter(scheduler.at("restarts"));
    d.checkpointRestores = counter(scheduler.at("checkpoint_restores"));
    d.rejected = counter(scheduler.at("rejected"));
    d.rejoins = counter(scheduler.at("rejoins"));

    if (doc.has("prefix_cache")) {
        const JsonValue& p = doc.at("prefix_cache");
        d.hasPrefixCache = true;
        d.prefixHits = counter(p.at("hits"));
        d.prefixMisses = counter(p.at("misses"));
        d.prefixEvictions = counter(p.at("evictions"));
        d.prefixHitTokens = p.at("hit_tokens").asInt();
        d.affinityRoutes = counter(p.at("affinity_routes"));
    }

    if (doc.has("slo")) {
        d.hasSlo = true;
        d.sloPass = doc.at("slo").at("pass").asBool();
    }
    return d;
}

void
writeReportJson(const RunReport& report, const std::string& path,
                const SloReport* slo)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("writeReportJson: cannot open " + path);
    out << reportToJson(report, slo) << '\n';
}

}  // namespace splitwise::core
