#ifndef SPLITWISE_CORE_RUN_H_
#define SPLITWISE_CORE_RUN_H_

/**
 * @file
 * The consolidated cluster-run entry point.
 *
 * Cluster::run, the bench runCluster/runClusterMany helpers, and the
 * telemetry-output overloads accreted into parallel surfaces that
 * each threaded a different subset of (design, workload, faults,
 * telemetry, jobs) by hand. RunOptions names the whole input of a
 * run; run()/runMany() are the one way to execute it (the deprecated
 * bench shims are gone). runLive() serves the same cluster from a
 * thread-safe Ingress under an abstract clock, and replay() re-runs
 * a captured live session bit-exact through the offline path.
 *
 * Layering note: ISSUE 5 sketches this as `sim::RunOptions`, but the
 * run input spans core-layer types (ClusterDesign, FaultPlan,
 * SimConfig) that the sim layer must not depend on, so it lives in
 * core.
 */

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/fault_plan.h"
#include "core/ingress.h"
#include "core/recording.h"
#include "model/llm_config.h"
#include "workload/trace.h"
#include "workload/trace_stream.h"

namespace splitwise::core {

/** Telemetry file destinations for a run; empty path = disabled. */
struct RunSinks {
    /** Perfetto/Chrome trace JSON (implies trace recording). */
    std::string tracePath;
    /** Sampled cluster metrics CSV (implies time-series sampling). */
    std::string timeseriesPath;
    /**
     * Latency-attribution JSON: per-phase breakdown plus SLO-offender
     * exemplar timelines (implies span tracking). Ignored by
     * SPLITWISE_TELEMETRY=OFF builds.
     */
    std::string breakdownPath;

    bool any() const
    {
        return !tracePath.empty() || !timeseriesPath.empty() ||
               !breakdownPath.empty();
    }
};

/**
 * The complete input of a cluster run: model, cluster design,
 * workload trace(s), simulation tunables, fault plan, telemetry
 * sinks, and parallelism. One cluster is built and run per trace.
 */
struct RunOptions {
    model::LlmConfig llm;
    ClusterDesign design;
    /** One cluster run per trace, reported in trace order. */
    std::vector<workload::Trace> traces;
    SimConfig sim;
    /** Faults scheduled into every run (validated against design). */
    FaultPlan faults;
    /**
     * File sinks, applied per run; with several traces the paths are
     * suffixed with the trace index before the extension
     * (trace.json, trace.1.json, ...). Setting a sink switches the
     * matching telemetry collection on.
     */
    RunSinks sinks;
    /**
     * Worker count for multi-trace runs: 0 = hardware default,
     * 1 = the exact serial path. Reports and artifacts are identical
     * at every job count.
     */
    int jobs = 1;
};

/**
 * Run a single-trace RunOptions to completion.
 *
 * @pre options.traces.size() == 1 (fatal otherwise).
 */
RunReport run(const RunOptions& options);

/**
 * Run every trace in @p options concurrently (`jobs` workers) and
 * return the reports in trace order. Each run owns its cluster and
 * telemetry sinks.
 */
std::vector<RunReport> runMany(const RunOptions& options);

/**
 * Run a single cluster fed from a pull-based trace stream instead of
 * a materialized Trace: arrivals are drawn one at a time, so the
 * run's memory stays O(in-flight requests) regardless of how many
 * requests the stream produces. Produces a report byte-identical to
 * run() over the drained equivalent of the same stream.
 *
 * @pre options.traces is empty (fatal otherwise): the stream is the
 *      workload.
 */
RunReport runStream(const RunOptions& options, workload::TraceStream& stream);

/**
 * Serve live traffic: build one cluster from @p options and run its
 * serve loop against @p ingress under @p clock until
 * Ingress::shutdown() drains it. With a SimClock the loop runs at
 * full simulation speed; with a WallClock it sleeps until the next
 * event, preempted by new arrivals. When @p capture is non-null the
 * stamped arrival/cancel records are appended to it for a later
 * bit-exact replay().
 *
 * @pre options.traces is empty (fatal otherwise): the ingress is the
 *      workload.
 */
RunReport runLive(const RunOptions& options, Ingress& ingress,
                  sim::Clock& clock, SessionRecording* capture = nullptr);

/**
 * Re-run a captured live session through the ordinary streaming
 * path: cancels are pre-posted at their recorded times, arrivals
 * replay in stamp order. Produces a RunReport identical to the live
 * run that produced @p recording.
 */
RunReport replay(const RunOptions& options, const SessionRecording& recording);

/** "out.json" with run index 2 becomes "out.2.json"; index 0 is unchanged. */
std::string indexedSinkPath(const std::string& path, int index);

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_RUN_H_
