#ifndef SPLITWISE_CORE_DESIGNS_H_
#define SPLITWISE_CORE_DESIGNS_H_

#include <string>

#include "hw/cost_model.h"
#include "hw/machine_spec.h"

namespace splitwise::core {

/**
 * A cluster design point: machine types and counts for the prompt
 * and token pools (paper Table V), or a homogeneous mixed-batching
 * baseline.
 */
struct ClusterDesign {
    std::string name;
    hw::MachineSpec promptSpec;
    int numPrompt = 0;
    hw::MachineSpec tokenSpec;
    int numToken = 0;
    /** False = baseline: every machine runs both phases locally. */
    bool splitwise = true;

    /** Total machine count. */
    int machines() const { return numPrompt + numToken; }

    /** Cost/power/space footprint of the design. */
    hw::FleetFootprint footprint() const;

    /** Same design with different pool sizes. */
    ClusterDesign withCounts(int num_prompt, int num_token) const;
};

/** Baseline-A100: @p n DGX-A100 machines, mixed batching. */
ClusterDesign baselineA100(int n);

/** Baseline-H100: @p n DGX-H100 machines, mixed batching. */
ClusterDesign baselineH100(int n);

/** Splitwise-AA: A100 prompt and token pools. */
ClusterDesign splitwiseAA(int num_prompt, int num_token);

/** Splitwise-HH: H100 prompt and token pools. */
ClusterDesign splitwiseHH(int num_prompt, int num_token);

/** Splitwise-HA: H100 prompt pool, A100 token pool. */
ClusterDesign splitwiseHA(int num_prompt, int num_token);

/** Splitwise-HHcap: H100 pools, token GPUs power-capped to 50%. */
ClusterDesign splitwiseHHcap(int num_prompt, int num_token);

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_DESIGNS_H_
