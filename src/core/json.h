#ifndef SPLITWISE_CORE_JSON_H_
#define SPLITWISE_CORE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace splitwise::core {

/**
 * A minimal JSON document model with a recursive-descent parser.
 *
 * Exists so the simulator's JSON artifacts (run reports, DST
 * scenario files) can be read back without an external dependency.
 * Covers the JSON the repo emits: objects, arrays, doubles, strings
 * with basic escapes, booleans, null. Object key order is preserved
 * so dump() round-trips parse() byte-for-byte on our own output.
 */
class JsonValue {
  public:
    enum class Type {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    JsonValue() = default;
    explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
    explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
    explicit JsonValue(std::int64_t n)
        : type_(Type::kNumber), number_(static_cast<double>(n)) {}
    explicit JsonValue(std::string s)
        : type_(Type::kString), string_(std::move(s)) {}

    /** Parse a complete JSON document; fatal() on malformed input. */
    static JsonValue parse(const std::string& text);

    /** Build an empty array/object value. */
    static JsonValue makeArray();
    static JsonValue makeObject();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    /** Typed accessors; fatal() on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    std::int64_t asInt() const;
    const std::string& asString() const;

    /** Array access; fatal() when not an array / out of range. */
    std::size_t size() const;
    const JsonValue& at(std::size_t index) const;
    const std::vector<JsonValue>& items() const;

    /** Object access; fatal() when not an object. */
    bool has(const std::string& key) const;
    /** Member lookup; fatal() when the key is absent. */
    const JsonValue& at(const std::string& key) const;
    /** Member lookup with a fallback for absent keys. */
    const JsonValue& get(const std::string& key,
                         const JsonValue& fallback) const;
    const std::vector<std::pair<std::string, JsonValue>>& members() const;

    /** Append to an array value. */
    void push(JsonValue v);

    /** Set an object member (appends; last set wins on lookup). */
    void set(const std::string& key, JsonValue v);

    /** Serialize; numbers use %.17g so doubles round-trip exactly. */
    std::string dump() const;

  private:
    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Escape a string for embedding in a JSON document (no quotes). */
std::string jsonEscape(const std::string& s);

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_JSON_H_
