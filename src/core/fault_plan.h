#ifndef SPLITWISE_CORE_FAULT_PLAN_H_
#define SPLITWISE_CORE_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace splitwise::core {

class Cluster;

/** The fault modes the injector can drive (beyond paper SIV-E). */
enum class FaultKind {
    /** Machine dies at `at`; rejoins after durationUs (0 = never). */
    kCrash,
    /** Machine iterations run `factor`x slower for durationUs. */
    kSlowdown,
    /** Transfers touching the machine's NIC fail for durationUs. */
    kLinkFault,
    /** The machine's NIC runs at `factor` of nominal bandwidth. */
    kLinkDegrade,
};

/** Human-readable fault-kind name. */
const char* faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent {
    FaultKind kind = FaultKind::kCrash;
    int machineId = -1;
    sim::TimeUs at = 0;
    /** Window length; for kCrash, the downtime (0 = permanent). */
    sim::TimeUs durationUs = 0;
    /** Slowdown multiplier (kSlowdown, > 1 = slower) or bandwidth
     *  fraction (kLinkDegrade, in (0, 1]). Unused otherwise. */
    double factor = 1.0;
};

/**
 * A deterministic, seedable fault schedule: the single source of
 * truth for everything the injector will do to a cluster. Identical
 * plans applied to identical clusters yield bit-identical runs.
 */
struct FaultPlan {
    std::vector<FaultEvent> events;

    void add(const FaultEvent& event) { events.push_back(event); }
    std::size_t size() const { return events.size(); }
    bool empty() const { return events.empty(); }

    /** Number of events of one kind. */
    std::size_t count(FaultKind kind) const;

    /** Chronological order (ties: machine id, then kind). */
    void sort();

    /**
     * Fatal-check the plan against a cluster of @p num_machines:
     * ids in range, windows/factors well-formed.
     */
    void validate(int num_machines) const;
};

/**
 * Knobs of the randomized fault storm. Counts are exact; targets,
 * times, and magnitudes are drawn uniformly from the given ranges
 * using a caller-supplied seed.
 */
struct FaultStormConfig {
    /** Machines in the target cluster (required, > 0). */
    int numMachines = 0;
    /** Faults land uniformly in [0, horizonUs). */
    sim::TimeUs horizonUs = sim::secondsToUs(30.0);

    /** Transient crashes (each machine crashed at most once). */
    int crashes = 2;
    sim::TimeUs minDowntimeUs = sim::secondsToUs(2.0);
    sim::TimeUs maxDowntimeUs = sim::secondsToUs(8.0);

    /** Straggler windows. */
    int slowdowns = 2;
    double minSlowdownFactor = 1.5;
    double maxSlowdownFactor = 4.0;
    sim::TimeUs slowdownWindowUs = sim::secondsToUs(5.0);

    /** Hard NIC-fault windows. */
    int linkFaults = 3;
    sim::TimeUs linkFaultWindowUs = sim::msToUs(300.0);

    /** NIC bandwidth-degradation windows. */
    int linkDegrades = 2;
    double minBandwidthFactor = 0.05;
    double maxBandwidthFactor = 0.5;
    sim::TimeUs linkDegradeWindowUs = sim::secondsToUs(3.0);
};

/**
 * Generate a randomized fault storm. Deterministic: the same config
 * and seed always produce the same plan. Crash targets are sampled
 * without replacement so the storm never kills the same machine
 * twice (and never more machines than the cluster has).
 */
FaultPlan makeFaultStorm(const FaultStormConfig& config, std::uint64_t seed);

/**
 * Applies a FaultPlan to a Cluster by scheduling every event through
 * the cluster's fault entry points. Must run before Cluster::run().
 */
class FaultInjector {
  public:
    explicit FaultInjector(Cluster& cluster) : cluster_(cluster) {}

    /** Validate @p plan against the cluster and schedule it. */
    void apply(const FaultPlan& plan);

  private:
    Cluster& cluster_;
};

}  // namespace splitwise::core

#endif  // SPLITWISE_CORE_FAULT_PLAN_H_
