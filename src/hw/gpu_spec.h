#ifndef SPLITWISE_HW_GPU_SPEC_H_
#define SPLITWISE_HW_GPU_SPEC_H_

#include <cstdint>
#include <string>

namespace splitwise::hw {

/** GPU generations evaluated in the paper (Table I). */
enum class GpuType {
    kA100,
    kH100,
};

/** Human-readable name for a GPU type. */
const char* gpuTypeName(GpuType type);

/**
 * Per-GPU hardware parameters (paper Table I) plus the calibration
 * constants the analytical performance model needs.
 *
 * The calibration constants stand in for the profiling step the
 * paper runs on real DGX machines: they are chosen so the analytical
 * model reproduces the paper's published latency anchor points (see
 * DESIGN.md).
 */
struct GpuSpec {
    GpuType type = GpuType::kA100;
    std::string name;

    /** Peak dense FP16 tensor throughput, TFLOPs. */
    double peakFp16Tflops = 0.0;
    /** HBM capacity, GB. */
    double hbmCapacityGb = 0.0;
    /** HBM bandwidth, GB/s. */
    double hbmBandwidthGBps = 0.0;
    /** Thermal design power, watts. */
    double tdpWatts = 0.0;
    /** NVLink bandwidth per GPU, GB/s (intra-machine TP traffic). */
    double nvlinkGBps = 0.0;

    // --- calibration constants (stand-ins for hardware profiling) ---

    /** Achieved fraction of peak FLOPs in the prompt phase. */
    double promptMfu = 0.0;
    /** Fixed per-iteration overhead for prompt phases, ms. */
    double promptOverheadMs = 0.0;
    /** Per-transformer-layer communication/launch overhead, ms. */
    double perLayerOverheadMs = 0.0;
    /** Per-decode-sequence scheduling/sampling overhead, ms. */
    double perSeqOverheadMs = 0.0;
    /** Fraction of TDP the decode (token) phase actually needs. */
    double tokenPowerNeed = 0.0;
    /** Fraction of TDP the prompt phase needs at full batch. */
    double promptPowerNeed = 0.0;
};

/** Specification for an NVIDIA A100 (calibrated, see DESIGN.md). */
const GpuSpec& a100();

/** Specification for an NVIDIA H100 (calibrated, see DESIGN.md). */
const GpuSpec& h100();

/** Look up the spec for a GPU type. */
const GpuSpec& gpuSpec(GpuType type);

}  // namespace splitwise::hw

#endif  // SPLITWISE_HW_GPU_SPEC_H_
