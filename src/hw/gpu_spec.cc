#include "hw/gpu_spec.h"

#include "sim/log.h"

namespace splitwise::hw {

const char*
gpuTypeName(GpuType type)
{
    switch (type) {
      case GpuType::kA100: return "A100";
      case GpuType::kH100: return "H100";
    }
    return "?";
}

const GpuSpec&
a100()
{
    static const GpuSpec spec = [] {
        GpuSpec s;
        s.type = GpuType::kA100;
        s.name = "A100";
        s.peakFp16Tflops = 312.0;
        s.hbmCapacityGb = 80.0;
        s.hbmBandwidthGBps = 2039.0;
        s.tdpWatts = 400.0;
        s.nvlinkGBps = 50.0;
        s.promptMfu = 0.55;
        s.promptOverheadMs = 30.0;
        s.perLayerOverheadMs = 0.40;
        s.perSeqOverheadMs = 0.07;
        s.tokenPowerNeed = 0.55;
        s.promptPowerNeed = 0.95;
        return s;
    }();
    return spec;
}

const GpuSpec&
h100()
{
    static const GpuSpec spec = [] {
        GpuSpec s;
        s.type = GpuType::kH100;
        s.name = "H100";
        s.peakFp16Tflops = 989.0;
        s.hbmCapacityGb = 80.0;
        s.hbmBandwidthGBps = 3352.0;
        s.tdpWatts = 700.0;
        s.nvlinkGBps = 100.0;
        s.promptMfu = 0.36;
        s.promptOverheadMs = 20.0;
        s.perLayerOverheadMs = 0.284;
        s.perSeqOverheadMs = 0.05;
        s.tokenPowerNeed = 0.50;
        s.promptPowerNeed = 0.95;
        return s;
    }();
    return spec;
}

const GpuSpec&
gpuSpec(GpuType type)
{
    switch (type) {
      case GpuType::kA100: return a100();
      case GpuType::kH100: return h100();
    }
    sim::panic("unknown GpuType");
}

}  // namespace splitwise::hw
