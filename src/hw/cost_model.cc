#include "hw/cost_model.h"

namespace splitwise::hw {

void
FleetFootprint::add(const MachineSpec& spec, int count)
{
    costPerHour += spec.costPerHour * count;
    powerWatts += spec.provisionedPowerWatts() * count;
    machines += count;
}

double
FleetFootprint::costFor(sim::TimeUs duration) const
{
    return costPerHour * sim::usToSeconds(duration) / 3600.0;
}

double
FleetFootprint::energyWhFor(sim::TimeUs duration) const
{
    return powerWatts * sim::usToSeconds(duration) / 3600.0;
}

}  // namespace splitwise::hw
