#include "hw/interconnect.h"

#include <algorithm>

#include "sim/log.h"

namespace splitwise::hw {

sim::TimeUs
LinkSpec::wireTime(std::int64_t bytes) const
{
    if (bandwidthGBps <= 0.0)
        sim::fatal("LinkSpec with non-positive bandwidth");
    const double seconds = static_cast<double>(bytes) / (bandwidthGBps * 1e9);
    return sim::secondsToUs(seconds);
}

sim::TimeUs
LinkSpec::transferTime(std::int64_t bytes) const
{
    return setupUs + wireTime(bytes);
}

LinkSpec
linkBetween(const MachineSpec& a, const MachineSpec& b)
{
    LinkSpec link;
    link.bandwidthGBps = std::min(a.infinibandGBps, b.infinibandGBps);
    // MSCCL++ one-sided put over InfiniBand: connection setup and
    // semaphore signalling cost, amortized per transfer. Slower NICs
    // also handshake more slowly; the constants land the layer-wise
    // visible latency at the paper's ~5 ms (H100) / ~8 ms (A100).
    link.setupUs = static_cast<sim::TimeUs>(1.2e6 / link.bandwidthGBps);
    return link;
}

}  // namespace splitwise::hw
