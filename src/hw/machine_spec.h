#ifndef SPLITWISE_HW_MACHINE_SPEC_H_
#define SPLITWISE_HW_MACHINE_SPEC_H_

#include <cstdint>
#include <string>

#include "hw/gpu_spec.h"

namespace splitwise::hw {

/**
 * A DGX-class inference machine: 8 flagship GPUs behind NVLink with
 * an aggregate InfiniBand back-plane (paper §II-F), plus the
 * datacenter-facing cost/power parameters used for provisioning.
 *
 * A power cap (Splitwise-HHcap) lowers each GPU's power limit; the
 * platform overhead (CPUs, NICs, fans) is not capped, matching the
 * paper's 50%-per-GPU == 70%-per-machine arithmetic (Table V).
 */
struct MachineSpec {
    std::string name;
    GpuSpec gpu;
    int gpuCount = 8;

    /** Aggregate InfiniBand bandwidth of the machine, GB/s (Table I). */
    double infinibandGBps = 0.0;
    /** Rental cost, $/hr (Table I, CoreWeave pricing). */
    double costPerHour = 0.0;
    /** Non-GPU platform power, watts. */
    double platformOverheadWatts = 0.0;
    /** Per-GPU power cap as a fraction of TDP; 1.0 = uncapped. */
    double gpuPowerCapFraction = 1.0;

    /** Provisioned (peak) machine power in watts, cap applied. */
    double provisionedPowerWatts() const;

    /** Uncapped machine power in watts. */
    double ratedPowerWatts() const;

    /** Total HBM across the machine, bytes. */
    std::int64_t totalHbmBytes() const;

    /** Aggregate HBM bandwidth across the machine, GB/s. */
    double totalHbmBandwidthGBps() const;

    /** Aggregate peak FP16 FLOPs across the machine, TFLOPs. */
    double totalPeakTflops() const;

    /** Return a copy of this spec with a per-GPU power cap applied. */
    MachineSpec withPowerCap(double fraction) const;
};

/** DGX-A100 machine (8x A100, 200 GB/s InfiniBand, $17.6/hr). */
const MachineSpec& dgxA100();

/** DGX-H100 machine (8x H100, 400 GB/s InfiniBand, $38/hr). */
const MachineSpec& dgxH100();

/** DGX-H100 with GPUs power-capped to 50% (Splitwise-HHcap token). */
MachineSpec dgxH100Capped();

}  // namespace splitwise::hw

#endif  // SPLITWISE_HW_MACHINE_SPEC_H_
