#ifndef SPLITWISE_HW_INTERCONNECT_H_
#define SPLITWISE_HW_INTERCONNECT_H_

#include <cstdint>

#include "hw/machine_spec.h"
#include "sim/time.h"

namespace splitwise::hw {

/**
 * Point-to-point back-plane link between two machines.
 *
 * The achievable bandwidth between heterogeneous machines is limited
 * by the slower NIC (paper §VII: an H100-A100 pair runs at the A100's
 * InfiniBand rate).
 */
struct LinkSpec {
    /** Achievable bandwidth, GB/s. */
    double bandwidthGBps = 0.0;
    /** One-shot setup latency per transfer (connection + semaphore). */
    sim::TimeUs setupUs = 0;

    /** Wire time to move @p bytes, excluding setup. */
    sim::TimeUs wireTime(std::int64_t bytes) const;

    /** Total serialized transfer time for @p bytes. */
    sim::TimeUs transferTime(std::int64_t bytes) const;
};

/** Build the link between two machine types (min of the two NICs). */
LinkSpec linkBetween(const MachineSpec& a, const MachineSpec& b);

}  // namespace splitwise::hw

#endif  // SPLITWISE_HW_INTERCONNECT_H_
