#ifndef SPLITWISE_HW_COST_MODEL_H_
#define SPLITWISE_HW_COST_MODEL_H_

#include <vector>

#include "hw/machine_spec.h"
#include "sim/time.h"

namespace splitwise::hw {

/**
 * Aggregate datacenter-facing figures for a set of machines: rental
 * cost, provisioned power, and rack space (paper §IV-D optimizes
 * over throughput, cost, and power; space is reported in Fig. 18).
 */
struct FleetFootprint {
    double costPerHour = 0.0;
    double powerWatts = 0.0;
    int machines = 0;

    /** Accumulate @p count machines of the given spec. */
    void add(const MachineSpec& spec, int count);

    /** Cost of running the fleet for a simulated duration, $. */
    double costFor(sim::TimeUs duration) const;

    /** Energy for a simulated duration at provisioned power, Wh. */
    double energyWhFor(sim::TimeUs duration) const;
};

}  // namespace splitwise::hw

#endif  // SPLITWISE_HW_COST_MODEL_H_
