#include "hw/machine_spec.h"

namespace splitwise::hw {

double
MachineSpec::provisionedPowerWatts() const
{
    return gpuCount * gpu.tdpWatts * gpuPowerCapFraction + platformOverheadWatts;
}

double
MachineSpec::ratedPowerWatts() const
{
    return gpuCount * gpu.tdpWatts + platformOverheadWatts;
}

std::int64_t
MachineSpec::totalHbmBytes() const
{
    return static_cast<std::int64_t>(gpuCount * gpu.hbmCapacityGb * 1e9);
}

double
MachineSpec::totalHbmBandwidthGBps() const
{
    return gpuCount * gpu.hbmBandwidthGBps;
}

double
MachineSpec::totalPeakTflops() const
{
    return gpuCount * gpu.peakFp16Tflops;
}

MachineSpec
MachineSpec::withPowerCap(double fraction) const
{
    MachineSpec capped = *this;
    capped.gpuPowerCapFraction = fraction;
    capped.name = name + "-cap" + std::to_string(static_cast<int>(fraction * 100));
    return capped;
}

const MachineSpec&
dgxA100()
{
    static const MachineSpec spec = [] {
        MachineSpec m;
        m.name = "DGX-A100";
        m.gpu = a100();
        m.gpuCount = 8;
        m.infinibandGBps = 200.0;
        m.costPerHour = 17.6;
        // Chosen so DGX-H100 draws exactly 1.75x a DGX-A100 and a
        // 50%-per-GPU cap lands at 70% machine power (Table V).
        m.platformOverheadWatts = 2133.0;
        return m;
    }();
    return spec;
}

const MachineSpec&
dgxH100()
{
    static const MachineSpec spec = [] {
        MachineSpec m;
        m.name = "DGX-H100";
        m.gpu = h100();
        m.gpuCount = 8;
        m.infinibandGBps = 400.0;
        m.costPerHour = 38.0;
        m.platformOverheadWatts = 3733.0;
        return m;
    }();
    return spec;
}

MachineSpec
dgxH100Capped()
{
    return dgxH100().withPowerCap(0.5);
}

}  // namespace splitwise::hw
