#ifndef SPLITWISE_PROVISION_PROVISIONER_H_
#define SPLITWISE_PROVISION_PROVISIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/designs.h"
#include "core/slo.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::provision {

/** The six cluster design families evaluated in the paper. */
enum class DesignKind {
    kBaselineA100,
    kBaselineH100,
    kSplitwiseAA,
    kSplitwiseHH,
    kSplitwiseHA,
    kSplitwiseHHcap,
};

/** Human-readable design name. */
const char* designKindName(DesignKind kind);

/** All six kinds, in the paper's presentation order. */
const std::vector<DesignKind>& allDesignKinds();

/** True for the two homogeneous mixed-batching baselines. */
bool isBaseline(DesignKind kind);

/**
 * Instantiate a design with pool counts. Baselines fold both counts
 * into one homogeneous pool.
 */
core::ClusterDesign makeDesign(DesignKind kind, int num_prompt,
                               int num_token);

/** One simulated design point with its SLO verdict. */
struct RunOutcome {
    core::RunReport report;
    core::SloReport slo;
    double rps = 0.0;
};

/** A provisioning search result. */
struct Optimum {
    core::ClusterDesign design;
    double maxRps = 0.0;
    hw::FleetFootprint footprint;
    bool feasible = false;
};

/** One cell of the Fig. 12 two-dimensional design-space sweep. */
struct SweepCell {
    int numPrompt = 0;
    int numToken = 0;
    bool pass = false;
    double costPerHour = 0.0;
    double e2eP50Slowdown = 0.0;
    /**
     * True when this cell's simulation threw instead of producing a
     * verdict (e.g. an invalid design or a fault plan that sheds
     * everything). The sweep records the cell and continues; pass
     * stays false and errorMessage carries the exception text.
     */
    bool error = false;
    std::string errorMessage;
    /**
     * reportToJson() of the cell's run (with its SLO verdict), only
     * when ProvisionerOptions::captureReports is set - the golden
     * artifact the `--jobs 1` vs `--jobs N` determinism gate
     * byte-compares.
     */
    std::string reportJson;
};

/** Tunables for Provisioner searches. */
struct ProvisionerOptions {
    /** Length of the synthetic trace per simulation. */
    sim::TimeUs traceDuration = sim::secondsToUs(60);
    std::uint64_t seed = 42;
    core::SloSet slos;
    core::SimConfig simConfig;
    /** Binary-search resolution on throughput, RPS. */
    double rpsTolerance = 2.0;
    /** Upper bound on any cluster's throughput, RPS. */
    double maxRpsCeiling = 512.0;
    /** Split ratios probed for two-pool designs. */
    std::vector<double> promptFractions =
        {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.875};
    /**
     * Concurrent simulations for sweep() and the split-ratio probes
     * inside the iso-* searches; 0 picks hardware_concurrency, 1 is
     * the exact serial path. Results are independent of the value
     * (each simulation owns its RNG, cluster, and telemetry).
     */
    int jobs = 0;
    /** Fill SweepCell::reportJson for every sweep cell. */
    bool captureReports = false;
};

/**
 * Searches cluster design spaces with the event-driven simulator
 * (paper SIV-D): max-throughput under SLOs per design point, plus
 * the iso-power / iso-cost / iso-throughput optimizers behind
 * Figs. 12, 18 and 19.
 */
class Provisioner {
  public:
    using Options = ProvisionerOptions;

    Provisioner(model::LlmConfig llm, workload::Workload workload,
                Options options = {});

    /** Simulate one design at one load and evaluate the SLOs. */
    RunOutcome evaluate(const core::ClusterDesign& design, double rps) const;

    /** Largest RPS (within tolerance) meeting all nine SLOs. */
    double maxThroughput(const core::ClusterDesign& design) const;

    /** Fig. 12: sweep pool sizes at a fixed load. */
    std::vector<SweepCell> sweep(DesignKind kind,
                                 const std::vector<int>& prompt_counts,
                                 const std::vector<int>& token_counts,
                                 double rps) const;

    /** Max throughput under a provisioned power budget (Fig. 18a). */
    Optimum isoPowerThroughputOptimized(DesignKind kind,
                                        double power_budget_watts) const;

    /** Max throughput under a rental cost budget (Fig. 18b). */
    Optimum isoCostThroughputOptimized(DesignKind kind,
                                       double cost_budget_per_hour) const;

    /** Least power achieving a target throughput (Fig. 19a). */
    Optimum isoThroughputPowerOptimized(DesignKind kind,
                                        double target_rps) const;

    /** Least cost achieving a target throughput (Fig. 19b). */
    Optimum isoThroughputCostOptimized(DesignKind kind,
                                       double target_rps) const;

    const Options& options() const { return options_; }

  private:
    /** Deterministic trace for a load level. */
    workload::Trace makeTrace(double rps) const;

    /** Best split of a budget across the two pools by unit weights. */
    Optimum bestUnderBudget(DesignKind kind, double budget,
                            double prompt_unit, double token_unit) const;

    /** Smallest cluster at a split ratio meeting a target RPS. */
    int minTotalMachinesAt(DesignKind kind, double prompt_fraction,
                           double target_rps, int hi_start) const;

    Optimum isoThroughputOptimized(DesignKind kind, double target_rps,
                                   bool optimize_power) const;

    model::LlmConfig llm_;
    workload::Workload workload_;
    Options options_;
};

}  // namespace splitwise::provision

#endif  // SPLITWISE_PROVISION_PROVISIONER_H_
