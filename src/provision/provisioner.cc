#include "provision/provisioner.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <set>
#include <utility>

#include "core/report_io.h"
#include "sim/log.h"
#include "sim/run_pool.h"

namespace splitwise::provision {

const char*
designKindName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::kBaselineA100: return "Baseline-A100";
      case DesignKind::kBaselineH100: return "Baseline-H100";
      case DesignKind::kSplitwiseAA: return "Splitwise-AA";
      case DesignKind::kSplitwiseHH: return "Splitwise-HH";
      case DesignKind::kSplitwiseHA: return "Splitwise-HA";
      case DesignKind::kSplitwiseHHcap: return "Splitwise-HHcap";
    }
    return "?";
}

const std::vector<DesignKind>&
allDesignKinds()
{
    static const std::vector<DesignKind> kinds = {
        DesignKind::kBaselineA100,  DesignKind::kBaselineH100,
        DesignKind::kSplitwiseAA,   DesignKind::kSplitwiseHH,
        DesignKind::kSplitwiseHA,   DesignKind::kSplitwiseHHcap,
    };
    return kinds;
}

bool
isBaseline(DesignKind kind)
{
    return kind == DesignKind::kBaselineA100 ||
           kind == DesignKind::kBaselineH100;
}

core::ClusterDesign
makeDesign(DesignKind kind, int num_prompt, int num_token)
{
    switch (kind) {
      case DesignKind::kBaselineA100:
        return core::baselineA100(num_prompt + num_token);
      case DesignKind::kBaselineH100:
        return core::baselineH100(num_prompt + num_token);
      case DesignKind::kSplitwiseAA:
        return core::splitwiseAA(num_prompt, num_token);
      case DesignKind::kSplitwiseHH:
        return core::splitwiseHH(num_prompt, num_token);
      case DesignKind::kSplitwiseHA:
        return core::splitwiseHA(num_prompt, num_token);
      case DesignKind::kSplitwiseHHcap:
        return core::splitwiseHHcap(num_prompt, num_token);
    }
    sim::panic("unknown DesignKind");
}

Provisioner::Provisioner(model::LlmConfig llm, workload::Workload workload,
                         Options options)
    : llm_(std::move(llm)), workload_(std::move(workload)),
      options_(std::move(options))
{
}

workload::Trace
Provisioner::makeTrace(double rps) const
{
    workload::TraceGenerator gen(workload_, options_.seed);
    return gen.generate(rps, options_.traceDuration);
}

RunOutcome
Provisioner::evaluate(const core::ClusterDesign& design, double rps) const
{
    RunOutcome outcome;
    outcome.rps = rps;
    const workload::Trace trace = makeTrace(rps);
    core::Cluster cluster(llm_, design, options_.simConfig);
    outcome.report = cluster.run(trace);
    const core::SloChecker checker(llm_);
    outcome.slo = checker.evaluate(outcome.report.requests, options_.slos);
    return outcome;
}

double
Provisioner::maxThroughput(const core::ClusterDesign& design) const
{
    auto passes = [&](double rps) {
        return evaluate(design, rps).slo.pass;
    };

    // Exponential probe for the first failing load.
    double lo = 0.0;
    double hi = 2.0;
    while (hi < options_.maxRpsCeiling && passes(hi)) {
        lo = hi;
        hi *= 2.0;
    }
    if (lo == 0.0) {
        // Even 2 RPS fails: probe down before giving up.
        if (passes(1.0)) {
            lo = 1.0;
        } else if (passes(0.5)) {
            return 0.5;
        } else {
            return 0.0;
        }
    }
    hi = std::min(hi, options_.maxRpsCeiling);

    while (hi - lo > options_.rpsTolerance) {
        const double mid = 0.5 * (lo + hi);
        if (passes(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::vector<SweepCell>
Provisioner::sweep(DesignKind kind, const std::vector<int>& prompt_counts,
                   const std::vector<int>& token_counts, double rps) const
{
    std::vector<std::pair<int, int>> grid;
    grid.reserve(prompt_counts.size() * token_counts.size());
    for (int np : prompt_counts) {
        for (int nt : token_counts)
            grid.emplace_back(np, nt);
    }

    // Every cell is an independent simulation; fan out and keep the
    // np-major cell order. A throwing cell becomes an error cell
    // instead of aborting the whole sweep.
    sim::RunPool pool(options_.jobs);
    return pool.map(grid, [&](const std::pair<int, int>& counts) {
        SweepCell cell;
        cell.numPrompt = counts.first;
        cell.numToken = counts.second;
        try {
            const core::ClusterDesign design =
                makeDesign(kind, counts.first, counts.second);
            const RunOutcome outcome = evaluate(design, rps);
            cell.pass = outcome.slo.pass;
            cell.costPerHour = design.footprint().costPerHour;
            cell.e2eP50Slowdown = outcome.slo.e2eSlowdown.p50;
            if (options_.captureReports)
                cell.reportJson =
                    core::reportToJson(outcome.report, &outcome.slo);
        } catch (const std::exception& e) {
            cell.error = true;
            cell.errorMessage = e.what();
        }
        return cell;
    });
}

Optimum
Provisioner::bestUnderBudget(DesignKind kind, double budget,
                             double prompt_unit, double token_unit) const
{
    Optimum best;
    if (isBaseline(kind)) {
        const int n = static_cast<int>(budget / prompt_unit);
        if (n < 1)
            return best;
        best.design = makeDesign(kind, n, 0);
        best.maxRps = maxThroughput(best.design);
        best.footprint = best.design.footprint();
        best.feasible = best.maxRps > 0.0;
        return best;
    }

    // Deduplicate the candidate splits serially (deterministic), then
    // probe every candidate's max throughput concurrently: each probe
    // is its own bisection over independent simulations.
    std::set<std::pair<int, int>> tried;
    std::vector<std::pair<int, int>> candidates;
    for (double f : options_.promptFractions) {
        int np = std::max(
            1, static_cast<int>(std::floor(budget * f / prompt_unit)));
        int nt = static_cast<int>(
            std::floor((budget - np * prompt_unit) / token_unit));
        while (nt < 1 && np > 1) {
            --np;
            nt = static_cast<int>(
                std::floor((budget - np * prompt_unit) / token_unit));
        }
        if (nt < 1)
            continue;
        if (tried.insert({np, nt}).second)
            candidates.push_back({np, nt});
    }

    sim::RunPool pool(options_.jobs);
    const std::vector<double> throughputs =
        pool.map(candidates, [&](const std::pair<int, int>& counts) {
            return maxThroughput(
                makeDesign(kind, counts.first, counts.second));
        });

    // Serial argmax in candidate order keeps tie-breaking identical
    // to the old serial loop (first strict improvement wins).
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (throughputs[i] > best.maxRps) {
            best.design = makeDesign(kind, candidates[i].first,
                                     candidates[i].second);
            best.maxRps = throughputs[i];
            best.footprint = best.design.footprint();
            best.feasible = throughputs[i] > 0.0;
        }
    }
    return best;
}

Optimum
Provisioner::isoPowerThroughputOptimized(DesignKind kind,
                                         double power_budget_watts) const
{
    const core::ClusterDesign unit = makeDesign(kind, 1, 1);
    return bestUnderBudget(kind, power_budget_watts,
                           unit.promptSpec.provisionedPowerWatts(),
                           unit.tokenSpec.provisionedPowerWatts());
}

Optimum
Provisioner::isoCostThroughputOptimized(DesignKind kind,
                                        double cost_budget_per_hour) const
{
    const core::ClusterDesign unit = makeDesign(kind, 1, 1);
    return bestUnderBudget(kind, cost_budget_per_hour,
                           unit.promptSpec.costPerHour,
                           unit.tokenSpec.costPerHour);
}

int
Provisioner::minTotalMachinesAt(DesignKind kind, double prompt_fraction,
                                double target_rps, int hi_start) const
{
    auto counts = [&](int total) {
        int np = std::max(
            1, static_cast<int>(std::lround(prompt_fraction * total)));
        np = std::min(np, total - (isBaseline(kind) ? 0 : 1));
        const int nt = isBaseline(kind) ? 0 : total - np;
        return std::make_pair(np, nt);
    };
    auto meets = [&](int total) {
        const auto [np, nt] = counts(total);
        return evaluate(makeDesign(kind, np, nt), target_rps).slo.pass;
    };

    constexpr int kMaxMachines = 512;
    int hi = std::max(isBaseline(kind) ? 1 : 2, hi_start);
    while (hi <= kMaxMachines && !meets(hi))
        hi *= 2;
    if (hi > kMaxMachines)
        return -1;

    int lo = isBaseline(kind) ? 0 : 1;  // known-infeasible floor
    while (hi - lo > 1) {
        const int mid = (lo + hi) / 2;
        if (meets(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

Optimum
Provisioner::isoThroughputOptimized(DesignKind kind, double target_rps,
                                    bool optimize_power) const
{
    Optimum best;
    double best_objective = std::numeric_limits<double>::max();

    const std::vector<double> fractions =
        isBaseline(kind) ? std::vector<double>{1.0} : options_.promptFractions;

    // Each split ratio's minimal-cluster bisection is independent of
    // the others: probe them concurrently, pick the winner serially
    // in fraction order (same tie-breaking as the old serial loop).
    sim::RunPool pool(options_.jobs);
    const std::vector<int> totals = pool.map(fractions, [&](double f) {
        return minTotalMachinesAt(kind, f, target_rps, 4);
    });

    for (std::size_t i = 0; i < fractions.size(); ++i) {
        const double f = fractions[i];
        const int total = totals[i];
        if (total < 0)
            continue;
        int np = std::max(1, static_cast<int>(std::lround(f * total)));
        np = std::min(np, total - (isBaseline(kind) ? 0 : 1));
        const int nt = isBaseline(kind) ? 0 : total - np;
        const core::ClusterDesign design = makeDesign(kind, np, nt);
        const hw::FleetFootprint footprint = design.footprint();
        const double objective =
            optimize_power ? footprint.powerWatts : footprint.costPerHour;
        if (objective < best_objective) {
            best_objective = objective;
            best.design = design;
            best.maxRps = target_rps;
            best.footprint = footprint;
            best.feasible = true;
        }
    }
    return best;
}

Optimum
Provisioner::isoThroughputPowerOptimized(DesignKind kind,
                                         double target_rps) const
{
    return isoThroughputOptimized(kind, target_rps, true);
}

Optimum
Provisioner::isoThroughputCostOptimized(DesignKind kind,
                                        double target_rps) const
{
    return isoThroughputOptimized(kind, target_rps, false);
}

}  // namespace splitwise::provision
