#ifndef SPLITWISE_MODEL_LLM_CONFIG_H_
#define SPLITWISE_MODEL_LLM_CONFIG_H_

#include <cstdint>
#include <string>

namespace splitwise::model {

/**
 * Architecture parameters of a decoder-only transformer LLM
 * (paper Table III).
 */
struct LlmConfig {
    std::string name;
    int numLayers = 0;
    int hiddenSize = 0;
    int numHeads = 0;
    /** KV heads; equals numHeads for multi-head attention. */
    int numKvHeads = 0;
    std::int64_t numParams = 0;
    /** Weight precision, bytes (2 = FP16). */
    int bytesPerParam = 2;

    /** Total model weight footprint, bytes. */
    std::int64_t weightBytes() const;

    /**
     * KV-cache footprint per token of context, bytes:
     * 2 (K and V) x layers x hidden x (kvHeads / heads) x precision.
     */
    std::int64_t kvBytesPerToken() const;
};

/** Llama2-70B: 80 layers, 8192 hidden, 32 heads (Table III). */
const LlmConfig& llama2_70b();

/** BLOOM-176B: 70 layers, 14336 hidden, 112 heads (Table III). */
const LlmConfig& bloom_176b();

}  // namespace splitwise::model

#endif  // SPLITWISE_MODEL_LLM_CONFIG_H_
