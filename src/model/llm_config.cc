#include "model/llm_config.h"

namespace splitwise::model {

std::int64_t
LlmConfig::weightBytes() const
{
    return numParams * bytesPerParam;
}

std::int64_t
LlmConfig::kvBytesPerToken() const
{
    const double kv_ratio =
        static_cast<double>(numKvHeads) / static_cast<double>(numHeads);
    return static_cast<std::int64_t>(
        2.0 * numLayers * hiddenSize * kv_ratio * bytesPerParam);
}

const LlmConfig&
llama2_70b()
{
    static const LlmConfig cfg = {
        .name = "Llama2-70B",
        .numLayers = 80,
        .hiddenSize = 8192,
        .numHeads = 32,
        .numKvHeads = 32,
        .numParams = 70'000'000'000,
        .bytesPerParam = 2,
    };
    return cfg;
}

const LlmConfig&
bloom_176b()
{
    static const LlmConfig cfg = {
        .name = "BLOOM-176B",
        .numLayers = 70,
        .hiddenSize = 14336,
        .numHeads = 112,
        .numKvHeads = 112,
        .numParams = 176'000'000'000,
        .bytesPerParam = 2,
    };
    return cfg;
}

}  // namespace splitwise::model
