#include "model/power_model.h"

#include <algorithm>
#include <cmath>

namespace splitwise::model {

namespace {

/** Idle-ish floor of GPU draw while kernels run sparsely. */
constexpr double kIdleFraction = 0.35;

/** Prompt batch size (tokens) at which draw saturates near TDP. */
constexpr double kPromptPowerSaturationTokens = 1500.0;

/** Exponent of the prompt-phase cap-to-latency penalty (Fig. 9a). */
constexpr double kPromptCapExponent = 1.4;

}  // namespace

const char*
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::kPrompt: return "prompt";
      case Phase::kToken: return "token";
    }
    return "?";
}

PowerModel::PowerModel(const hw::GpuSpec& gpu) : gpu_(gpu) {}

double
PowerModel::promptPowerFraction(std::int64_t prompt_tokens) const
{
    const double load = std::min(
        1.0, static_cast<double>(prompt_tokens) / kPromptPowerSaturationTokens);
    return kIdleFraction + (gpu_.promptPowerNeed - kIdleFraction) * load;
}

double
PowerModel::tokenPowerFraction(int batch_size) const
{
    // Bandwidth-bound: flat draw, a whisker above the phase's need at
    // large batches (Fig. 8b shows an essentially flat profile).
    const double bump = 0.02 * std::min(1.0, batch_size / 64.0);
    return gpu_.tokenPowerNeed + bump;
}

double
PowerModel::capLatencyMultiplier(Phase phase, double cap_fraction) const
{
    const double cap = std::clamp(cap_fraction, 0.05, 1.0);
    const double need =
        phase == Phase::kPrompt ? gpu_.promptPowerNeed : gpu_.tokenPowerNeed;
    if (cap >= need)
        return 1.0;
    const double deficit = need / cap;
    if (phase == Phase::kPrompt)
        return std::pow(deficit, kPromptCapExponent);
    return deficit;
}

double
PowerModel::machinePowerWatts(const hw::MachineSpec& machine,
                              double gpu_fraction) const
{
    const double capped =
        std::min(gpu_fraction, machine.gpuPowerCapFraction);
    return machine.gpuCount * machine.gpu.tdpWatts * capped +
           machine.platformOverheadWatts;
}

}  // namespace splitwise::model
