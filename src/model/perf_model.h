#ifndef SPLITWISE_MODEL_PERF_MODEL_H_
#define SPLITWISE_MODEL_PERF_MODEL_H_

#include <cstdint>
#include <memory>

#include "hw/machine_spec.h"
#include "model/llm_config.h"
#include "model/power_model.h"
#include "sim/time.h"

namespace splitwise::model {

/**
 * Composition of one machine iteration (forward pass) across the two
 * phases: a chunk of batched prompt tokens plus a set of decode
 * sequences with their accumulated context (mixed continuous
 * batching, Fig. 2c). Pure prompt or pure token iterations simply
 * leave the other side zero.
 */
struct IterationShape {
    /** Total prompt tokens processed this iteration. */
    std::int64_t promptTokens = 0;
    /** Number of requests those prompt tokens belong to. */
    int promptRequests = 0;
    /** Number of decode sequences generating one token each. */
    int tokenRequests = 0;
    /** Total KV context tokens across the decode sequences. */
    std::int64_t contextTokens = 0;

    bool
    empty() const
    {
        return promptTokens == 0 && tokenRequests == 0;
    }
};

/**
 * Latency model for LLM iterations on a given machine.
 *
 * Mirrors the paper's performance model (SV-B): given the batch
 * composition it predicts the iteration latency. Implementations:
 * AnalyticalPerfModel (roofline, stands in for hardware profiling)
 * and PiecewiseLinearPerfModel (the paper's fitted form).
 */
class PerfModel {
  public:
    virtual ~PerfModel() = default;

    /**
     * Latency of a pure prompt iteration over @p prompt_tokens total
     * tokens split across @p num_requests requests.
     */
    virtual sim::TimeUs promptTime(std::int64_t prompt_tokens,
                                   int num_requests) const = 0;

    /**
     * Latency of a pure decode iteration over @p batch_size
     * sequences with @p context_tokens total KV context.
     */
    virtual sim::TimeUs tokenTime(int batch_size,
                                  std::int64_t context_tokens) const = 0;

    /**
     * Latency of a mixed iteration. The default composes the two
     * phase costs without double-counting the shared weight pass.
     */
    virtual sim::TimeUs iterationTime(const IterationShape& shape) const;
};

/**
 * Roofline-style analytical performance model, calibrated to the
 * paper's published latency anchors (see DESIGN.md).
 *
 * Prompt phase: compute-bound - time follows FLOPs over achieved
 * throughput, with a utilization ramp for small batches and a
 * saturation decline past ~2048 batched tokens (Fig. 6a).
 * Token phase: bandwidth-bound - time follows weight + KV bytes over
 * HBM bandwidth plus per-layer communication and per-sequence
 * overheads (Fig. 5b). GPU power caps slow each phase according to
 * PowerModel::capLatencyMultiplier.
 */
class AnalyticalPerfModel : public PerfModel {
  public:
    AnalyticalPerfModel(LlmConfig llm, hw::MachineSpec machine);

    sim::TimeUs promptTime(std::int64_t prompt_tokens,
                           int num_requests) const override;
    sim::TimeUs tokenTime(int batch_size,
                          std::int64_t context_tokens) const override;
    sim::TimeUs iterationTime(const IterationShape& shape) const override;

    /** The modelled LLM. */
    const LlmConfig& llm() const { return llm_; }

    /** The modelled machine. */
    const hw::MachineSpec& machine() const { return machine_; }

    /** Prompt-phase throughput in tokens/s at a batch of @p tokens. */
    double promptThroughput(std::int64_t tokens) const;

    /**
     * Decode throughput in generated tokens/s at batch size @p b
     * with mean per-sequence context @p ctx_per_seq.
     */
    double tokenThroughput(int b, std::int64_t ctx_per_seq) const;

  private:
    /** Prompt compute time before overheads and cap penalty, ms. */
    double promptComputeMs(std::int64_t tokens, int num_requests) const;
    /** Compute utilization factor at a prompt batch of @p tokens. */
    double promptUtilization(std::int64_t tokens) const;

    LlmConfig llm_;
    hw::MachineSpec machine_;
    PowerModel power_;
    double promptCapMult_ = 1.0;
    double tokenCapMult_ = 1.0;
};

/** Make an analytical model for a model/machine pair. */
std::unique_ptr<PerfModel> makeAnalyticalPerfModel(const LlmConfig& llm,
                                                   const hw::MachineSpec& machine);

}  // namespace splitwise::model

#endif  // SPLITWISE_MODEL_PERF_MODEL_H_
