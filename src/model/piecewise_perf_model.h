#ifndef SPLITWISE_MODEL_PIECEWISE_PERF_MODEL_H_
#define SPLITWISE_MODEL_PIECEWISE_PERF_MODEL_H_

#include <memory>
#include <vector>

#include "model/perf_model.h"
#include "model/piecewise.h"

namespace splitwise::model {

/**
 * The paper's fitted performance model (SV-B): piecewise-linear in
 * prompt batch size, bilinear in (decode batch size, total context).
 *
 * Built by sampling a reference model at profile points - exactly
 * the role hardware profiling plays in the paper's methodology. The
 * paper validates its fit at < 3% MAPE; tests reproduce that check
 * against the analytical model.
 */
class PiecewiseLinearPerfModel : public PerfModel {
  public:
    /**
     * Fit against @p reference using default profiling grids
     * (prompt tokens 1..16384, batch 0..256, context 0..2M tokens).
     */
    static std::unique_ptr<PiecewiseLinearPerfModel>
    fit(const PerfModel& reference);

    /** Fit with explicit profiling grids. */
    static std::unique_ptr<PiecewiseLinearPerfModel>
    fit(const PerfModel& reference, const std::vector<double>& prompt_knots,
        const std::vector<double>& batch_knots,
        const std::vector<double>& context_knots);

    sim::TimeUs promptTime(std::int64_t prompt_tokens,
                           int num_requests) const override;
    sim::TimeUs tokenTime(int batch_size,
                          std::int64_t context_tokens) const override;

  private:
    PiecewiseLinearPerfModel(PiecewiseLinear prompt, BilinearGrid token,
                             double per_request_ms);

    PiecewiseLinear promptMs_;
    BilinearGrid tokenMs_;
    /** Extra cost per additional prompt request in a batch, ms. */
    double perRequestMs_;
};

}  // namespace splitwise::model

#endif  // SPLITWISE_MODEL_PIECEWISE_PERF_MODEL_H_
