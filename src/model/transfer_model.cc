#include "model/transfer_model.h"

#include <algorithm>

#include "sim/log.h"

namespace splitwise::model {

namespace {

/** Per-request semaphore wait after the final layer's put, us. */
constexpr sim::TimeUs kSemaphoreUs = 1500;

/**
 * Fraction of the wire time stolen from prompt compute by the
 * per-layer synchronization (SIV-C interference).
 */
constexpr double kInterferenceFraction = 0.10;

}  // namespace

TransferModel::TransferModel(LlmConfig llm, hw::LinkSpec link,
                             std::int64_t layerwise_threshold_tokens,
                             double compression_ratio)
    : llm_(std::move(llm)), link_(link),
      layerwiseThreshold_(layerwise_threshold_tokens),
      compressionRatio_(compression_ratio)
{
    if (compressionRatio_ < 1.0)
        sim::fatal("TransferModel: compression ratio must be >= 1");
}

std::int64_t
TransferModel::kvBytes(std::int64_t prompt_tokens) const
{
    const double raw = static_cast<double>(prompt_tokens) *
                       static_cast<double>(llm_.kvBytesPerToken());
    return static_cast<std::int64_t>(raw / compressionRatio_);
}

sim::TimeUs
TransferModel::serializedTime(std::int64_t prompt_tokens) const
{
    return link_.transferTime(kvBytes(prompt_tokens));
}

sim::TimeUs
TransferModel::layerwiseVisibleTime(std::int64_t prompt_tokens,
                                    sim::TimeUs prompt_compute) const
{
    const sim::TimeUs wire = link_.wireTime(kvBytes(prompt_tokens));
    const sim::TimeUs per_layer = wire / std::max(llm_.numLayers, 1);
    // All layers except the last overlap with the remaining prompt
    // computation; if the link is slower than compute the residual
    // backlog also becomes visible.
    const sim::TimeUs overlap_window =
        prompt_compute * (llm_.numLayers - 1) / std::max(llm_.numLayers, 1);
    const sim::TimeUs backlog =
        std::max<sim::TimeUs>(0, wire - per_layer - overlap_window);
    return link_.setupUs + per_layer + backlog + kSemaphoreUs;
}

sim::TimeUs
TransferModel::layerwiseInterference(std::int64_t prompt_tokens,
                                     sim::TimeUs prompt_compute) const
{
    const sim::TimeUs wire = link_.wireTime(kvBytes(prompt_tokens));
    const auto interference =
        static_cast<sim::TimeUs>(kInterferenceFraction * wire);
    // Interference cannot exceed the compute it perturbs.
    return std::min(interference, prompt_compute);
}

bool
TransferModel::useLayerwise(std::int64_t prompt_tokens) const
{
    return prompt_tokens >= layerwiseThreshold_;
}

TransferModel::Plan
TransferModel::plan(std::int64_t prompt_tokens,
                    sim::TimeUs prompt_compute) const
{
    Plan p;
    p.wireUs = link_.wireTime(kvBytes(prompt_tokens));
    if (useLayerwise(prompt_tokens)) {
        p.layerwise = true;
        p.visibleUs = layerwiseVisibleTime(prompt_tokens, prompt_compute);
        p.interferenceUs = layerwiseInterference(prompt_tokens, prompt_compute);
    } else {
        p.layerwise = false;
        p.visibleUs = serializedTime(prompt_tokens);
        p.interferenceUs = 0;
    }
    return p;
}

}  // namespace splitwise::model
