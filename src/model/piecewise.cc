#include "model/piecewise.h"

#include <algorithm>
#include <cstddef>

#include "sim/log.h"

namespace splitwise::model {

namespace {

/** Find the segment index i such that xs[i] <= x < xs[i+1]. */
std::size_t
segmentIndex(const std::vector<double>& xs, double x)
{
    if (x <= xs.front())
        return 0;
    if (x >= xs.back())
        return xs.size() - 2;
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    return static_cast<std::size_t>(it - xs.begin()) - 1;
}

void
checkKnots(const std::vector<double>& xs, const char* what)
{
    if (xs.size() < 2)
        sim::fatal(std::string(what) + ": need at least 2 knots");
    for (std::size_t i = 1; i < xs.size(); ++i) {
        if (xs[i] <= xs[i - 1])
            sim::fatal(std::string(what) + ": knots must strictly increase");
    }
}

double
lerpClamped(const std::vector<double>& xs, const std::vector<double>& ys,
            double x)
{
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    const std::size_t i = segmentIndex(xs, x);
    const double t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    return ys[i] + t * (ys[i + 1] - ys[i]);
}

}  // namespace

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys))
{
    checkKnots(xs_, "PiecewiseLinear");
    if (ys_.size() != xs_.size())
        sim::fatal("PiecewiseLinear: xs/ys length mismatch");
}

double
PiecewiseLinear::operator()(double x) const
{
    return lerpClamped(xs_, ys_, x);
}

BilinearGrid::BilinearGrid(std::vector<double> xs, std::vector<double> ys,
                           std::vector<double> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values))
{
    checkKnots(xs_, "BilinearGrid axis 0");
    checkKnots(ys_, "BilinearGrid axis 1");
    if (values_.size() != xs_.size() * ys_.size())
        sim::fatal("BilinearGrid: values size mismatch");
}

double
BilinearGrid::at(double x, double y) const
{
    const double xc = std::clamp(x, xs_.front(), xs_.back());
    const double yc = std::clamp(y, ys_.front(), ys_.back());
    const std::size_t i = segmentIndex(xs_, xc);
    const std::size_t j = segmentIndex(ys_, yc);
    const double tx = (xc - xs_[i]) / (xs_[i + 1] - xs_[i]);
    const double ty = (yc - ys_[j]) / (ys_[j + 1] - ys_[j]);
    const std::size_t stride = ys_.size();
    const double v00 = values_[i * stride + j];
    const double v01 = values_[i * stride + j + 1];
    const double v10 = values_[(i + 1) * stride + j];
    const double v11 = values_[(i + 1) * stride + j + 1];
    const double v0 = v00 + ty * (v01 - v00);
    const double v1 = v10 + ty * (v11 - v10);
    return v0 + tx * (v1 - v0);
}

}  // namespace splitwise::model
