#ifndef SPLITWISE_MODEL_TRANSFER_MODEL_H_
#define SPLITWISE_MODEL_TRANSFER_MODEL_H_

#include <cstdint>

#include "hw/interconnect.h"
#include "model/llm_config.h"
#include "sim/time.h"

namespace splitwise::model {

/**
 * KV-cache transfer cost model (paper SIV-C, Fig. 11/14).
 *
 * Serialized mode ships the whole cache after the prompt finishes:
 * the full wire time lands on the critical path of the second token.
 * Layer-wise mode puts each layer's KV as soon as that layer's
 * prompt computation completes, hiding all but the last layer behind
 * the remaining prompt compute - at the price of a small
 * fine-grained-synchronization interference on TTFT. Splitwise picks
 * serialized below a prompt-size threshold and layer-wise above it.
 */
class TransferModel {
  public:
    /** Chosen transfer technique and its visible costs. */
    struct Plan {
        bool layerwise = false;
        /** Latency added to the second token, us. */
        sim::TimeUs visibleUs = 0;
        /** Latency added to the prompt phase itself (TTFT), us. */
        sim::TimeUs interferenceUs = 0;
        /** Raw wire occupancy of the link, us. */
        sim::TimeUs wireUs = 0;
    };

    /**
     * @param llm Model whose KV cache is shipped.
     * @param link Prompt-to-token machine link.
     * @param layerwise_threshold_tokens Prompt size at or above
     *     which layer-wise transfer is used (512 on H100, SVI-A).
     * @param compression_ratio Wire-size divisor from KV-cache
     *     compression (paper SVII suggests compressing before
     *     transfer); 1.0 ships raw FP16 KV.
     */
    TransferModel(LlmConfig llm, hw::LinkSpec link,
                  std::int64_t layerwise_threshold_tokens = 512,
                  double compression_ratio = 1.0);

    /** KV bytes on the wire for a prompt of @p prompt_tokens. */
    std::int64_t kvBytes(std::int64_t prompt_tokens) const;

    /** Full serialized transfer latency (setup + wire). */
    sim::TimeUs serializedTime(std::int64_t prompt_tokens) const;

    /**
     * Visible (non-overlapped) latency of a layer-wise transfer,
     * given the prompt computation it overlaps with.
     */
    sim::TimeUs layerwiseVisibleTime(std::int64_t prompt_tokens,
                                     sim::TimeUs prompt_compute) const;

    /** TTFT interference caused by layer-wise synchronization. */
    sim::TimeUs layerwiseInterference(std::int64_t prompt_tokens,
                                      sim::TimeUs prompt_compute) const;

    /** True when Splitwise would use layer-wise transfer. */
    bool useLayerwise(std::int64_t prompt_tokens) const;

    /** Pick the best technique and report its costs (SIV-C). */
    Plan plan(std::int64_t prompt_tokens, sim::TimeUs prompt_compute) const;

    const hw::LinkSpec& link() const { return link_; }

  private:
    LlmConfig llm_;
    hw::LinkSpec link_;
    std::int64_t layerwiseThreshold_;
    double compressionRatio_;
};

}  // namespace splitwise::model

#endif  // SPLITWISE_MODEL_TRANSFER_MODEL_H_
