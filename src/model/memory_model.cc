#include "model/memory_model.h"

#include <algorithm>

#include "sim/log.h"

namespace splitwise::model {

MemoryModel::MemoryModel(LlmConfig llm, hw::MachineSpec machine,
                         double usable_fraction)
    : llm_(std::move(llm)), machine_(std::move(machine)),
      usableFraction_(usable_fraction)
{
    if (usable_fraction <= 0.0 || usable_fraction > 1.0)
        sim::fatal("MemoryModel: usable_fraction must be in (0, 1]");
}

std::int64_t
MemoryModel::weightBytes() const
{
    return llm_.weightBytes();
}

std::int64_t
MemoryModel::kvBytesPerToken() const
{
    return llm_.kvBytesPerToken();
}

std::int64_t
MemoryModel::kvCapacityBytes() const
{
    const auto usable = static_cast<std::int64_t>(
        usableFraction_ * static_cast<double>(machine_.totalHbmBytes()));
    return std::max<std::int64_t>(0, usable - weightBytes());
}

std::int64_t
MemoryModel::kvCapacityTokens() const
{
    return kvCapacityBytes() / kvBytesPerToken();
}

double
MemoryModel::requiredGb(std::int64_t context_tokens) const
{
    const double bytes = static_cast<double>(weightBytes()) +
                         static_cast<double>(context_tokens) *
                             static_cast<double>(kvBytesPerToken());
    return bytes / 1e9;
}

bool
MemoryModel::weightsFit() const
{
    return weightBytes() <
           static_cast<std::int64_t>(usableFraction_ *
                                     static_cast<double>(machine_.totalHbmBytes()));
}

}  // namespace splitwise::model
