#include "model/perf_model.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace splitwise::model {

namespace {

/** Utilization ramp half-point for small prompt batches, tokens. */
constexpr double kPromptRampTokens = 150.0;

/** Reference batch at which promptMfu is calibrated (DESIGN.md). */
constexpr double kPromptMfuReferenceTokens = 1500.0;

/** Prompt batch beyond which efficiency declines (Fig. 6a). */
constexpr double kPromptSaturationTokens = 2048.0;

/** Scale of the post-saturation efficiency decline, tokens. */
constexpr double kPromptDeclineTokens = 6000.0;

/** Fixed prompt-phase overhead (tokenization, launch), ms. */
constexpr double kPromptFixedMs = 2.0;

/**
 * Decode batch size at which the batching penalty reaches 1x the
 * bandwidth-bound floor, i.e. TBT doubles (Fig. 5b: "with a batch
 * size of 64, there is only 2x impact on TBT"). Below ~16 sequences
 * the quadratic form leaves TBT nearly flat, matching the paper's
 * "very little impact" observation.
 */
constexpr double kDecodeBatchDoubling = 64.0;

}  // namespace

sim::TimeUs
PerfModel::iterationTime(const IterationShape& shape) const
{
    // Generic composition for implementations that only provide the
    // two pure-phase costs: the shared weight pass is counted once by
    // subtracting the empty-iteration baseline from the decode side.
    if (shape.tokenRequests == 0)
        return promptTime(shape.promptTokens, shape.promptRequests);
    if (shape.promptTokens == 0)
        return tokenTime(shape.tokenRequests, shape.contextTokens);
    const sim::TimeUs prompt =
        promptTime(shape.promptTokens, shape.promptRequests);
    const sim::TimeUs token =
        tokenTime(shape.tokenRequests, shape.contextTokens);
    // tokenTime(1, 0) approximates the shared weight+communication
    // pass already paid for by the prompt side.
    const sim::TimeUs base = tokenTime(1, 0);
    return prompt + std::max<sim::TimeUs>(0, token - base);
}

AnalyticalPerfModel::AnalyticalPerfModel(LlmConfig llm, hw::MachineSpec machine)
    : llm_(std::move(llm)), machine_(std::move(machine)), power_(machine_.gpu)
{
    if (machine_.gpuCount <= 0)
        sim::fatal("AnalyticalPerfModel: machine without GPUs");
    promptCapMult_ = power_.capLatencyMultiplier(
        Phase::kPrompt, machine_.gpuPowerCapFraction);
    tokenCapMult_ = power_.capLatencyMultiplier(
        Phase::kToken, machine_.gpuPowerCapFraction);
}

double
AnalyticalPerfModel::promptUtilization(std::int64_t tokens) const
{
    const double p = static_cast<double>(std::max<std::int64_t>(tokens, 1));
    const double ramp = p / (p + kPromptRampTokens);
    const double ramp_ref = kPromptMfuReferenceTokens /
                            (kPromptMfuReferenceTokens + kPromptRampTokens);
    const double over = std::max(0.0, p - kPromptSaturationTokens);
    const double decline = 1.0 / (1.0 + over / kPromptDeclineTokens);
    return ramp / ramp_ref * decline;
}

double
AnalyticalPerfModel::promptComputeMs(std::int64_t tokens, int num_requests) const
{
    if (tokens <= 0)
        return 0.0;
    const int n = std::max(num_requests, 1);
    const double p = static_cast<double>(tokens);
    // Linear MLP/projection FLOPs plus per-request quadratic
    // attention (requests attend only within themselves).
    const double linear_flops = 2.0 * static_cast<double>(llm_.numParams) * p;
    const double attn_flops =
        2.0 * llm_.numLayers * llm_.hiddenSize * (p * p / n);
    const double eff_flops = machine_.totalPeakTflops() * 1e12 *
                             machine_.gpu.promptMfu * promptUtilization(tokens);
    return (linear_flops + attn_flops) / eff_flops * 1e3 + kPromptFixedMs;
}

sim::TimeUs
AnalyticalPerfModel::promptTime(std::int64_t prompt_tokens,
                                int num_requests) const
{
    IterationShape shape;
    shape.promptTokens = prompt_tokens;
    shape.promptRequests = std::max(num_requests, prompt_tokens > 0 ? 1 : 0);
    return iterationTime(shape);
}

sim::TimeUs
AnalyticalPerfModel::tokenTime(int batch_size,
                               std::int64_t context_tokens) const
{
    IterationShape shape;
    shape.tokenRequests = batch_size;
    shape.contextTokens = context_tokens;
    return iterationTime(shape);
}

sim::TimeUs
AnalyticalPerfModel::iterationTime(const IterationShape& shape) const
{
    const double bw_bytes_per_ms = machine_.totalHbmBandwidthGBps() * 1e6;
    const double weight_read_ms =
        static_cast<double>(llm_.weightBytes()) / bw_bytes_per_ms;
    const double kv_read_ms =
        static_cast<double>(shape.contextTokens) *
        static_cast<double>(llm_.kvBytesPerToken()) / bw_bytes_per_ms;
    const double comm_ms = llm_.numLayers * machine_.gpu.perLayerOverheadMs;
    const int total_requests = shape.promptRequests + shape.tokenRequests;
    const double seq_ms = machine_.gpu.perSeqOverheadMs * total_requests;

    // Batching decode sequences is nearly free until the kernels
    // saturate; the penalty grows quadratically, doubling the
    // bandwidth-bound floor at 64 sequences (Fig. 5b).
    const double decode_floor_ms = weight_read_ms + comm_ms;
    const double batch_ratio =
        shape.tokenRequests / kDecodeBatchDoubling;
    const double decode_penalty_ms =
        decode_floor_ms * batch_ratio * batch_ratio;

    const double prompt_ms =
        promptComputeMs(shape.promptTokens, shape.promptRequests) *
        promptCapMult_;
    // The weight pass is shared: a prompt chunk streams all weights
    // through compute anyway, so a mixed iteration pays
    // max(prompt compute, weight read), then the extra KV traffic.
    const double ms = std::max(prompt_ms, weight_read_ms * tokenCapMult_) +
                      (kv_read_ms + decode_penalty_ms) * tokenCapMult_ +
                      comm_ms + seq_ms;
    return sim::msToUs(ms);
}

double
AnalyticalPerfModel::promptThroughput(std::int64_t tokens) const
{
    if (tokens <= 0)
        return 0.0;
    const double seconds = sim::usToSeconds(promptTime(tokens, 1));
    return static_cast<double>(tokens) / seconds;
}

double
AnalyticalPerfModel::tokenThroughput(int b, std::int64_t ctx_per_seq) const
{
    if (b <= 0)
        return 0.0;
    const double seconds = sim::usToSeconds(tokenTime(b, b * ctx_per_seq));
    return static_cast<double>(b) / seconds;
}

std::unique_ptr<PerfModel>
makeAnalyticalPerfModel(const LlmConfig& llm, const hw::MachineSpec& machine)
{
    return std::make_unique<AnalyticalPerfModel>(llm, machine);
}

}  // namespace splitwise::model
