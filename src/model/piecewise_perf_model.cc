#include "model/piecewise_perf_model.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace splitwise::model {

namespace {

std::vector<double>
defaultPromptKnots()
{
    return {1,    32,   64,   128,  192,  256,  384,  512,   768,  1024,
            1280, 1536, 1792, 2048, 2560, 3072, 4096, 6144,  8192, 12288,
            16384};
}

std::vector<double>
defaultBatchKnots()
{
    return {1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256};
}

std::vector<double>
defaultContextKnots()
{
    return {0,      4096,    16384,   65536,   131072,
            262144, 524288,  1048576, 2097152};
}

}  // namespace

std::unique_ptr<PiecewiseLinearPerfModel>
PiecewiseLinearPerfModel::fit(const PerfModel& reference)
{
    return fit(reference, defaultPromptKnots(), defaultBatchKnots(),
               defaultContextKnots());
}

std::unique_ptr<PiecewiseLinearPerfModel>
PiecewiseLinearPerfModel::fit(const PerfModel& reference,
                              const std::vector<double>& prompt_knots,
                              const std::vector<double>& batch_knots,
                              const std::vector<double>& context_knots)
{
    std::vector<double> prompt_ms;
    prompt_ms.reserve(prompt_knots.size());
    for (double p : prompt_knots) {
        const auto tokens = static_cast<std::int64_t>(p);
        prompt_ms.push_back(sim::usToMs(reference.promptTime(tokens, 1)));
    }

    std::vector<double> token_ms;
    token_ms.reserve(batch_knots.size() * context_knots.size());
    for (double b : batch_knots) {
        for (double k : context_knots) {
            const auto batch = static_cast<int>(b);
            const auto ctx = static_cast<std::int64_t>(k);
            token_ms.push_back(sim::usToMs(reference.tokenTime(batch, ctx)));
        }
    }

    // Per-extra-request overhead measured at a mid-sized prompt.
    const std::int64_t probe = 1024;
    const double one = sim::usToMs(reference.promptTime(probe, 1));
    const double four = sim::usToMs(reference.promptTime(probe, 4));
    const double per_request = std::max(0.0, (four - one) / 3.0);

    return std::unique_ptr<PiecewiseLinearPerfModel>(
        new PiecewiseLinearPerfModel(
            PiecewiseLinear(prompt_knots, std::move(prompt_ms)),
            BilinearGrid(batch_knots, context_knots, std::move(token_ms)),
            per_request));
}

PiecewiseLinearPerfModel::PiecewiseLinearPerfModel(PiecewiseLinear prompt,
                                                   BilinearGrid token,
                                                   double per_request_ms)
    : promptMs_(std::move(prompt)), tokenMs_(std::move(token)),
      perRequestMs_(per_request_ms)
{
}

sim::TimeUs
PiecewiseLinearPerfModel::promptTime(std::int64_t prompt_tokens,
                                     int num_requests) const
{
    if (prompt_tokens <= 0)
        return 0;
    const double base = promptMs_(static_cast<double>(prompt_tokens));
    const double extra = perRequestMs_ * std::max(0, num_requests - 1);
    return sim::msToUs(base + extra);
}

sim::TimeUs
PiecewiseLinearPerfModel::tokenTime(int batch_size,
                                    std::int64_t context_tokens) const
{
    if (batch_size <= 0)
        return 0;
    return sim::msToUs(tokenMs_.at(static_cast<double>(batch_size),
                                   static_cast<double>(context_tokens)));
}

}  // namespace splitwise::model
