#ifndef SPLITWISE_MODEL_POWER_MODEL_H_
#define SPLITWISE_MODEL_POWER_MODEL_H_

#include <cstdint>

#include "hw/gpu_spec.h"
#include "hw/machine_spec.h"

namespace splitwise::model {

/** Inference phase, in the paper's two-phase decomposition. */
enum class Phase {
    kPrompt,
    kToken,
};

/** Human-readable phase name. */
const char* phaseName(Phase phase);

/**
 * GPU power behaviour of the two inference phases (paper SIII-F,
 * Figs. 8 and 9).
 *
 * The prompt phase is compute-bound: its draw rises with batched
 * prompt tokens toward the GPU's TDP, and power caps slow it down
 * almost proportionally. The token phase is bandwidth-bound: draw is
 * flat near half of TDP regardless of batch size, and caps above
 * that need cost nothing.
 */
class PowerModel {
  public:
    explicit PowerModel(const hw::GpuSpec& gpu);

    /**
     * GPU power draw during a prompt phase with @p prompt_tokens
     * batched, as a fraction of TDP (Fig. 8a).
     */
    double promptPowerFraction(std::int64_t prompt_tokens) const;

    /**
     * GPU power draw during a decode iteration with @p batch_size
     * sequences, as a fraction of TDP (Fig. 8b: flat).
     */
    double tokenPowerFraction(int batch_size) const;

    /**
     * Latency multiplier when GPUs are capped to @p cap_fraction of
     * TDP (Fig. 9). Returns 1.0 when the cap exceeds the phase's
     * power need.
     */
    double capLatencyMultiplier(Phase phase, double cap_fraction) const;

    /**
     * Machine-level power draw in watts when GPUs run at
     * @p gpu_fraction of TDP (platform overhead is always drawn).
     */
    double machinePowerWatts(const hw::MachineSpec& machine,
                             double gpu_fraction) const;

  private:
    hw::GpuSpec gpu_;
};

}  // namespace splitwise::model

#endif  // SPLITWISE_MODEL_POWER_MODEL_H_
