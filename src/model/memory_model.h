#ifndef SPLITWISE_MODEL_MEMORY_MODEL_H_
#define SPLITWISE_MODEL_MEMORY_MODEL_H_

#include <cstdint>

#include "hw/machine_spec.h"
#include "model/llm_config.h"

namespace splitwise::model {

/**
 * GPU memory accounting for a model on a machine (paper SIII-E,
 * Fig. 7): weights are resident, activations need a reserve, and the
 * remainder holds the paged KV cache whose size grows with every
 * batched context token.
 */
class MemoryModel {
  public:
    /**
     * @param llm Model being served.
     * @param machine Machine hosting it (weights sharded over all
     *     GPUs via tensor parallelism).
     * @param usable_fraction Fraction of HBM the serving framework
     *     may use (vLLM-style gpu_memory_utilization).
     */
    MemoryModel(LlmConfig llm, hw::MachineSpec machine,
                double usable_fraction = 0.92);

    /** Weight bytes resident across the machine. */
    std::int64_t weightBytes() const;

    /** KV-cache bytes per context token. */
    std::int64_t kvBytesPerToken() const;

    /** Bytes available to the KV cache across the machine. */
    std::int64_t kvCapacityBytes() const;

    /** Maximum KV context tokens the machine can hold. */
    std::int64_t kvCapacityTokens() const;

    /**
     * Total memory needed with @p context_tokens of KV resident,
     * in GB (the Fig. 7 curve).
     */
    double requiredGb(std::int64_t context_tokens) const;

    /** True when the machine cannot even hold the weights. */
    bool weightsFit() const;

    const LlmConfig& llm() const { return llm_; }
    const hw::MachineSpec& machine() const { return machine_; }

  private:
    LlmConfig llm_;
    hw::MachineSpec machine_;
    double usableFraction_;
};

}  // namespace splitwise::model

#endif  // SPLITWISE_MODEL_MEMORY_MODEL_H_
