#ifndef SPLITWISE_MODEL_PIECEWISE_H_
#define SPLITWISE_MODEL_PIECEWISE_H_

#include <vector>

namespace splitwise::model {

/**
 * A one-dimensional piecewise-linear function over sorted knots.
 *
 * Evaluation clamps to the first/last segment's endpoint value
 * outside the knot range. This is the interpolation primitive behind
 * the paper's piecewise-linear performance model (SV-B).
 */
class PiecewiseLinear {
  public:
    /**
     * @param xs Strictly increasing knot positions (>= 2 entries).
     * @param ys Knot values, same length as @p xs.
     */
    PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

    /** Evaluate at @p x with clamped extrapolation. */
    double operator()(double x) const;

    /** Knot positions. */
    const std::vector<double>& knots() const { return xs_; }

    /** Knot values. */
    const std::vector<double>& values() const { return ys_; }

  private:
    std::vector<double> xs_;
    std::vector<double> ys_;
};

/**
 * A two-dimensional bilinear interpolation grid, used to fit decode
 * iteration latency over (batch size, total context tokens).
 */
class BilinearGrid {
  public:
    /**
     * @param xs Strictly increasing grid coordinates along axis 0.
     * @param ys Strictly increasing grid coordinates along axis 1.
     * @param values Row-major values, values[i * ys.size() + j]
     *     holding f(xs[i], ys[j]).
     */
    BilinearGrid(std::vector<double> xs, std::vector<double> ys,
                 std::vector<double> values);

    /** Evaluate at (x, y) with clamped extrapolation. */
    double at(double x, double y) const;

  private:
    std::vector<double> xs_;
    std::vector<double> ys_;
    std::vector<double> values_;
};

}  // namespace splitwise::model

#endif  // SPLITWISE_MODEL_PIECEWISE_H_
