#ifndef SPLITWISE_METRICS_REQUEST_METRICS_H_
#define SPLITWISE_METRICS_REQUEST_METRICS_H_

#include <cstdint>
#include <vector>

#include "metrics/summary.h"
#include "sim/time.h"

namespace splitwise::metrics {

/**
 * Final per-request measurements, in the units the paper reports.
 *
 * TTFT: queueing + prompt computation until the first token.
 * TBT:  mean time between subsequent tokens (reported per request as
 *       the paper's "average token streaming latency").
 * E2E:  arrival to last token.
 */
struct RequestResult {
    std::uint64_t requestId = 0;
    sim::TimeUs arrival = 0;
    std::int64_t promptTokens = 0;
    std::int64_t outputTokens = 0;
    double ttftMs = 0.0;
    double tbtMs = 0.0;
    /** Largest single inter-token gap, ms (tail-TBT; Fig. 2 effect). */
    double maxTbtMs = 0.0;
    double e2eMs = 0.0;
    /** Visible latency of the second token, ms (KV transfer impact). */
    double secondTokenMs = 0.0;
    /** Number of times the request's token phase was preempted. */
    int preemptions = 0;
};

/**
 * Aggregates per-request results into the latency summaries the
 * paper's SLOs and plots are defined over.
 */
class RequestMetrics {
  public:
    /** Record one finished request. */
    void add(const RequestResult& result);

    /** All recorded per-request results, in completion order. */
    const std::vector<RequestResult>& results() const { return results_; }

    /** Number of completed requests. */
    std::size_t completed() const { return results_.size(); }

    /** TTFT distribution (ms). */
    const Summary& ttftMs() const { return ttft_; }

    /** Per-request mean TBT distribution (ms). */
    const Summary& tbtMs() const { return tbt_; }

    /** Per-request max TBT distribution (ms). */
    const Summary& maxTbtMs() const { return maxTbt_; }

    /** E2E latency distribution (ms). */
    const Summary& e2eMs() const { return e2e_; }

    /** Total generated tokens across completed requests. */
    std::int64_t totalOutputTokens() const { return totalOutput_; }

    /** Total prompt tokens across completed requests. */
    std::int64_t totalPromptTokens() const { return totalPrompt_; }

    /**
     * Completed-request throughput in requests/s over the span from
     * the first arrival to the last completion.
     */
    double throughputRps() const;

    /** Generated-token throughput over the same span (tokens/s). */
    double tokenThroughput() const;

    /** Merge another collector's results into this one. */
    void merge(const RequestMetrics& other);

  private:
    std::vector<RequestResult> results_;
    Summary ttft_;
    Summary tbt_;
    Summary maxTbt_;
    Summary e2e_;
    std::int64_t totalOutput_ = 0;
    std::int64_t totalPrompt_ = 0;
    sim::TimeUs firstArrival_ = sim::kTimeNever;
    sim::TimeUs lastCompletion_ = 0;
};

}  // namespace splitwise::metrics

#endif  // SPLITWISE_METRICS_REQUEST_METRICS_H_
