#ifndef SPLITWISE_METRICS_REQUEST_METRICS_H_
#define SPLITWISE_METRICS_REQUEST_METRICS_H_

#include <cstdint>
#include <vector>

#include "metrics/quantile_sketch.h"
#include "metrics/summary.h"
#include "sim/time.h"

namespace splitwise::metrics {

/**
 * Final per-request measurements, in the units the paper reports.
 *
 * TTFT: queueing + prompt computation until the first token.
 * TBT:  mean time between subsequent tokens (reported per request as
 *       the paper's "average token streaming latency").
 * E2E:  arrival to last token.
 */
struct RequestResult {
    std::uint64_t requestId = 0;
    sim::TimeUs arrival = 0;
    std::int64_t promptTokens = 0;
    std::int64_t outputTokens = 0;
    double ttftMs = 0.0;
    double tbtMs = 0.0;
    /** Largest single inter-token gap, ms (tail-TBT; Fig. 2 effect). */
    double maxTbtMs = 0.0;
    double e2eMs = 0.0;
    /** Visible latency of the second token, ms (KV transfer impact). */
    double secondTokenMs = 0.0;
    /** Number of times the request's token phase was preempted. */
    int preemptions = 0;
};

/**
 * Aggregates per-request results into the latency summaries the
 * paper's SLOs and plots are defined over.
 *
 * Two storage modes:
 *  - exact (default): every RequestResult is retained and the four
 *    latency distributions are exact Summary objects — O(requests)
 *    memory, required by anything that walks results() (per-request
 *    SLO evaluation, the SloMonitor window cursor).
 *  - sketch (setSketchMode(true)): per-request results are folded
 *    into QuantileSketch instances and dropped — O(buckets) memory,
 *    for 10^6+-request runs. results() stays empty and percentiles
 *    carry the sketch's relative-error bound.
 */
class RequestMetrics {
  public:
    /**
     * Backend-independent view of one latency distribution — the
     * fields reportToJson emits. Exact mode fills it from Summary,
     * sketch mode from QuantileSketch.
     */
    struct LatencyStats {
        std::size_t count = 0;
        double mean = 0.0;
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
        double max = 0.0;
    };

    /**
     * Switch to bounded-memory sketch storage. Must be called before
     * the first add() (fatal otherwise — the two backends cannot be
     * reconciled retroactively).
     */
    void setSketchMode(bool on);

    /** True when latencies are held in sketches, not exact samples. */
    bool sketchMode() const { return sketch_; }

    /** Record one finished request. */
    void add(const RequestResult& result);

    /**
     * All recorded per-request results, in completion order.
     * Always empty in sketch mode — that is the memory saving.
     */
    const std::vector<RequestResult>& results() const { return results_; }

    /** Number of completed requests (tracked in both modes). */
    std::size_t completed() const { return completed_; }

    /** TTFT distribution (ms). Empty in sketch mode; use ttftStats(). */
    const Summary& ttftMs() const { return ttft_; }

    /** Per-request mean TBT distribution (ms). Empty in sketch mode. */
    const Summary& tbtMs() const { return tbt_; }

    /** Per-request max TBT distribution (ms). Empty in sketch mode. */
    const Summary& maxTbtMs() const { return maxTbt_; }

    /** E2E latency distribution (ms). Empty in sketch mode. */
    const Summary& e2eMs() const { return e2e_; }

    /** TTFT stats from whichever backend is active. */
    LatencyStats ttftStats() const;

    /** Mean-TBT stats from whichever backend is active. */
    LatencyStats tbtStats() const;

    /** Max-TBT stats from whichever backend is active. */
    LatencyStats maxTbtStats() const;

    /** E2E stats from whichever backend is active. */
    LatencyStats e2eStats() const;

    /** Total generated tokens across completed requests. */
    std::int64_t totalOutputTokens() const { return totalOutput_; }

    /** Total prompt tokens across completed requests. */
    std::int64_t totalPromptTokens() const { return totalPrompt_; }

    /**
     * Completed-request throughput in requests/s over the span from
     * the first arrival to the last completion.
     */
    double throughputRps() const;

    /** Generated-token throughput over the same span (tokens/s). */
    double tokenThroughput() const;

    /**
     * Merge another collector's results into this one. Storage modes
     * must match (fatal otherwise). Sketch-mode merges add bucket
     * counts, so the result is independent of merge order.
     */
    void merge(const RequestMetrics& other);

  private:
    static LatencyStats statsOf(const Summary& summary);
    static LatencyStats statsOf(const QuantileSketch& sketch);

    bool sketch_ = false;
    std::size_t completed_ = 0;
    std::vector<RequestResult> results_;
    Summary ttft_;
    Summary tbt_;
    Summary maxTbt_;
    Summary e2e_;
    QuantileSketch ttftSketch_;
    QuantileSketch tbtSketch_;
    QuantileSketch maxTbtSketch_;
    QuantileSketch e2eSketch_;
    std::int64_t totalOutput_ = 0;
    std::int64_t totalPrompt_ = 0;
    sim::TimeUs firstArrival_ = sim::kTimeNever;
    sim::TimeUs lastCompletion_ = 0;
};

}  // namespace splitwise::metrics

#endif  // SPLITWISE_METRICS_REQUEST_METRICS_H_
