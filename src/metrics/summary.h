#ifndef SPLITWISE_METRICS_SUMMARY_H_
#define SPLITWISE_METRICS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace splitwise::metrics {

/**
 * Accumulates scalar samples and answers order statistics.
 *
 * Samples are stored exactly; percentile queries sort lazily (the
 * sort result is cached until the next insertion). This favours
 * fidelity over memory, which is appropriate at the request counts
 * simulated here (tens of thousands).
 */
class Summary {
  public:
    /** Add one sample. */
    void add(double value);

    /** Merge all samples from another summary. */
    void merge(const Summary& other);

    /** Number of samples recorded. */
    std::size_t count() const { return samples_.size(); }

    /** True when no samples have been recorded. */
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /**
     * Percentile by linear interpolation between closest ranks.
     *
     * @param p Percentile in [0, 100]; out-of-range values clamp to
     *     the bounds.
     * @return 0 when empty; NaN when @p p is NaN.
     */
    double percentile(double p) const;

    /** Shorthand for common percentiles. */
    double p50() const { return percentile(50.0); }
    double p90() const { return percentile(90.0); }
    double p99() const { return percentile(99.0); }

    /** One equal-width histogram bucket over [min, max]. */
    struct Bucket {
        /** Inclusive upper edge of the bucket's value range. */
        double upperEdge = 0.0;
        /** Samples falling in the bucket. */
        std::size_t count = 0;
    };

    /**
     * Equal-width histogram of the samples over [min(), max()].
     *
     * All-identical samples (or a single one) collapse into one
     * bucket holding everything.
     *
     * @param bucket_count Number of buckets; must be positive.
     * @return Empty when no samples have been recorded.
     */
    std::vector<Bucket> histogram(std::size_t bucket_count) const;

    /** Drop all samples. */
    void clear();

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
    double sum_ = 0.0;
};

}  // namespace splitwise::metrics

#endif  // SPLITWISE_METRICS_SUMMARY_H_
