#include "metrics/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace splitwise::metrics {

QuantileSketch::QuantileSketch(double alpha) : alpha_(alpha) {
    if (!(alpha > 0.0) || !(alpha < 1.0)) {
        sim::fatal("QuantileSketch alpha must be in (0, 1)");
    }
    gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
    logGamma_ = std::log(gamma_);
}

std::int32_t QuantileSketch::indexOf(double value) const {
    return static_cast<std::int32_t>(std::ceil(std::log(value) / logGamma_));
}

double QuantileSketch::valueOf(std::int32_t index) const {
    // Geometric midpoint of (gamma^(i-1), gamma^i]: the estimate is
    // within a factor (1 +/- alpha) of any sample in the bucket.
    return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::add(double value) {
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    if (value <= 0.0) {
        ++zeroCount_;
    } else {
        ++buckets_[indexOf(value)];
    }
}

void QuantileSketch::merge(const QuantileSketch& other) {
    if (other.alpha_ != alpha_) {
        sim::fatal("QuantileSketch merge with mismatched alpha");
    }
    if (other.count_ == 0) return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    zeroCount_ += other.zeroCount_;
    for (const auto& [index, n] : other.buckets_) {
        buckets_[index] += n;
    }
}

double QuantileSketch::mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double QuantileSketch::min() const { return count_ == 0 ? 0.0 : min_; }

double QuantileSketch::max() const { return count_ == 0 ? 0.0 : max_; }

double QuantileSketch::percentile(double p) const {
    if (std::isnan(p)) return p;
    if (count_ == 0) return 0.0;
    const double clamped = std::clamp(p, 0.0, 100.0);
    // Same fractional-rank convention as Summary::percentile; the
    // walk below locates the bucket holding that order statistic.
    const double rank =
        clamped / 100.0 * static_cast<double>(count_ - 1);
    // The extreme order statistics are tracked exactly - return them
    // rather than a bucket midpoint, matching Summary's p0/p100.
    if (rank <= 0.0) return min_;
    if (rank >= static_cast<double>(count_ - 1)) return max_;
    std::uint64_t seen = zeroCount_;
    double estimate = 0.0;
    if (rank >= static_cast<double>(seen)) {
        for (const auto& [index, n] : buckets_) {
            seen += n;
            if (rank < static_cast<double>(seen)) {
                estimate = valueOf(index);
                break;
            }
        }
        if (rank >= static_cast<double>(seen)) estimate = max_;
    }
    return std::clamp(estimate, min_, max_);
}

void QuantileSketch::clear() {
    buckets_.clear();
    zeroCount_ = 0;
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

}  // namespace splitwise::metrics
