#ifndef SPLITWISE_METRICS_TABLE_H_
#define SPLITWISE_METRICS_TABLE_H_

#include <string>
#include <vector>

namespace splitwise::metrics {

/**
 * A small ASCII table builder used by the bench binaries to print
 * paper-style tables and figure series.
 */
class Table {
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with fixed precision. */
    static std::string fmt(double v, int precision = 2);

    /** Render the table with aligned columns. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace splitwise::metrics

#endif  // SPLITWISE_METRICS_TABLE_H_
