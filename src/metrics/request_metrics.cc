#include "metrics/request_metrics.h"

#include <algorithm>

#include "sim/log.h"

namespace splitwise::metrics {

void
RequestMetrics::setSketchMode(bool on)
{
    if (on == sketch_)
        return;
    if (completed_ != 0)
        sim::fatal("RequestMetrics::setSketchMode after results were added");
    sketch_ = on;
}

void
RequestMetrics::add(const RequestResult& result)
{
    ++completed_;
    if (sketch_) {
        ttftSketch_.add(result.ttftMs);
        if (result.outputTokens > 1)
            tbtSketch_.add(result.tbtMs);
        maxTbtSketch_.add(result.maxTbtMs);
        e2eSketch_.add(result.e2eMs);
    } else {
        results_.push_back(result);
        ttft_.add(result.ttftMs);
        if (result.outputTokens > 1)
            tbt_.add(result.tbtMs);
        maxTbt_.add(result.maxTbtMs);
        e2e_.add(result.e2eMs);
    }
    totalOutput_ += result.outputTokens;
    totalPrompt_ += result.promptTokens;
    firstArrival_ = std::min(firstArrival_, result.arrival);
    const auto completion = result.arrival + sim::msToUs(result.e2eMs);
    lastCompletion_ = std::max(lastCompletion_, completion);
}

RequestMetrics::LatencyStats
RequestMetrics::statsOf(const Summary& summary)
{
    return {summary.count(), summary.mean(), summary.p50(),
            summary.p90(),   summary.p99(),  summary.max()};
}

RequestMetrics::LatencyStats
RequestMetrics::statsOf(const QuantileSketch& sketch)
{
    return {sketch.count(), sketch.mean(), sketch.p50(),
            sketch.p90(),   sketch.p99(),  sketch.max()};
}

RequestMetrics::LatencyStats
RequestMetrics::ttftStats() const
{
    return sketch_ ? statsOf(ttftSketch_) : statsOf(ttft_);
}

RequestMetrics::LatencyStats
RequestMetrics::tbtStats() const
{
    return sketch_ ? statsOf(tbtSketch_) : statsOf(tbt_);
}

RequestMetrics::LatencyStats
RequestMetrics::maxTbtStats() const
{
    return sketch_ ? statsOf(maxTbtSketch_) : statsOf(maxTbt_);
}

RequestMetrics::LatencyStats
RequestMetrics::e2eStats() const
{
    return sketch_ ? statsOf(e2eSketch_) : statsOf(e2e_);
}

double
RequestMetrics::throughputRps()
 const
{
    if (completed_ == 0 || lastCompletion_ <= firstArrival_)
        return 0.0;
    const double span_s = sim::usToSeconds(lastCompletion_ - firstArrival_);
    return static_cast<double>(completed_) / span_s;
}

double
RequestMetrics::tokenThroughput() const
{
    if (completed_ == 0 || lastCompletion_ <= firstArrival_)
        return 0.0;
    const double span_s = sim::usToSeconds(lastCompletion_ - firstArrival_);
    return static_cast<double>(totalOutput_) / span_s;
}

void
RequestMetrics::merge(const RequestMetrics& other)
{
    if (other.sketch_ != sketch_)
        sim::fatal("RequestMetrics::merge across storage modes");
    if (sketch_) {
        completed_ += other.completed_;
        ttftSketch_.merge(other.ttftSketch_);
        tbtSketch_.merge(other.tbtSketch_);
        maxTbtSketch_.merge(other.maxTbtSketch_);
        e2eSketch_.merge(other.e2eSketch_);
        totalOutput_ += other.totalOutput_;
        totalPrompt_ += other.totalPrompt_;
        firstArrival_ = std::min(firstArrival_, other.firstArrival_);
        lastCompletion_ = std::max(lastCompletion_, other.lastCompletion_);
    } else {
        for (const auto& r : other.results_)
            add(r);
    }
}

}  // namespace splitwise::metrics
