#include "metrics/request_metrics.h"

#include <algorithm>

namespace splitwise::metrics {

void
RequestMetrics::add(const RequestResult& result)
{
    results_.push_back(result);
    ttft_.add(result.ttftMs);
    if (result.outputTokens > 1)
        tbt_.add(result.tbtMs);
    maxTbt_.add(result.maxTbtMs);
    e2e_.add(result.e2eMs);
    totalOutput_ += result.outputTokens;
    totalPrompt_ += result.promptTokens;
    firstArrival_ = std::min(firstArrival_, result.arrival);
    const auto completion = result.arrival + sim::msToUs(result.e2eMs);
    lastCompletion_ = std::max(lastCompletion_, completion);
}

double
RequestMetrics::throughputRps()
 const
{
    if (results_.empty() || lastCompletion_ <= firstArrival_)
        return 0.0;
    const double span_s = sim::usToSeconds(lastCompletion_ - firstArrival_);
    return static_cast<double>(results_.size()) / span_s;
}

double
RequestMetrics::tokenThroughput() const
{
    if (results_.empty() || lastCompletion_ <= firstArrival_)
        return 0.0;
    const double span_s = sim::usToSeconds(lastCompletion_ - firstArrival_);
    return static_cast<double>(totalOutput_) / span_s;
}

void
RequestMetrics::merge(const RequestMetrics& other)
{
    for (const auto& r : other.results_)
        add(r);
}

}  // namespace splitwise::metrics
