#include "metrics/summary.h"

#include <algorithm>
#include <cmath>

namespace splitwise::metrics {

void
Summary::add(double value)
{
    samples_.push_back(value);
    sum_ += value;
    sortedValid_ = false;
}

void
Summary::merge(const Summary& other)
{
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sum_ += other.sum_;
    sortedValid_ = false;
}

double
Summary::mean() const
{
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double
Summary::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.front();
}

double
Summary::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.back();
}

double
Summary::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    // std::clamp on NaN is UB; propagate it instead of returning an
    // arbitrary sample.
    if (std::isnan(p))
        return p;
    ensureSorted();
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

std::vector<Summary::Bucket>
Summary::histogram(std::size_t bucket_count) const
{
    if (bucket_count == 0)
        bucket_count = 1;
    if (samples_.empty())
        return {};
    ensureSorted();
    // A NaN or infinite sample would poison the range arithmetic
    // (NaN width makes the bucket-index cast undefined), so the
    // histogram covers the finite samples only - same spirit as the
    // percentile() NaN guard.
    std::vector<double> finite;
    finite.reserve(sorted_.size());
    for (double v : sorted_) {
        if (std::isfinite(v))
            finite.push_back(v);
    }
    if (finite.empty())
        return {};
    const double lo = finite.front();
    const double hi = finite.back();
    if (hi <= lo) {
        // Degenerate range: one bucket holds everything.
        return {{hi, finite.size()}};
    }
    const double width = (hi - lo) / static_cast<double>(bucket_count);
    std::vector<Bucket> buckets(bucket_count);
    for (std::size_t i = 0; i < bucket_count; ++i)
        buckets[i].upperEdge = lo + width * static_cast<double>(i + 1);
    // Exact upper edge to dodge accumulated rounding at the top.
    buckets.back().upperEdge = hi;
    for (double v : finite) {
        auto idx = static_cast<std::size_t>((v - lo) / width);
        idx = std::min(idx, bucket_count - 1);
        ++buckets[idx].count;
    }
    return buckets;
}

void
Summary::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
    sum_ = 0.0;
}

void
Summary::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

}  // namespace splitwise::metrics
