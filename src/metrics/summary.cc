#include "metrics/summary.h"

#include <algorithm>
#include <cmath>

namespace splitwise::metrics {

void
Summary::add(double value)
{
    samples_.push_back(value);
    sum_ += value;
    sortedValid_ = false;
}

void
Summary::merge(const Summary& other)
{
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sum_ += other.sum_;
    sortedValid_ = false;
}

double
Summary::mean() const
{
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double
Summary::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.front();
}

double
Summary::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.back();
}

double
Summary::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

void
Summary::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
    sum_ = 0.0;
}

void
Summary::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

}  // namespace splitwise::metrics
