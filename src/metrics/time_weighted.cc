#include "metrics/time_weighted.h"

namespace splitwise::metrics {

void
TimeWeightedHistogram::record(std::int64_t value, sim::TimeUs duration)
{
    if (duration <= 0)
        return;
    timeAt_[value] += duration;
    total_ += duration;
}

double
TimeWeightedHistogram::cdfAt(std::int64_t value) const
{
    if (total_ == 0)
        return 0.0;
    sim::TimeUs acc = 0;
    for (const auto& [v, t] : timeAt_) {
        if (v > value)
            break;
        acc += t;
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

double
TimeWeightedHistogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto& [v, t] : timeAt_)
        acc += static_cast<double>(v) * static_cast<double>(t);
    return acc / static_cast<double>(total_);
}

std::vector<std::pair<std::int64_t, double>>
TimeWeightedHistogram::cdf() const
{
    // Guard the empty window explicitly (like cdfAt/mean) so a
    // controller sampling an idle signal can never divide by a zero
    // total, whatever invariants the map happens to satisfy.
    if (total_ == 0)
        return {};
    std::vector<std::pair<std::int64_t, double>> out;
    out.reserve(timeAt_.size());
    sim::TimeUs acc = 0;
    for (const auto& [v, t] : timeAt_) {
        acc += t;
        out.emplace_back(v, static_cast<double>(acc) / static_cast<double>(total_));
    }
    return out;
}

void
TimeWeightedHistogram::merge(const TimeWeightedHistogram& other)
{
    for (const auto& [v, t] : other.timeAt_)
        timeAt_[v] += t;
    total_ += other.total_;
}

void
TimeWeightedHistogram::clear()
{
    timeAt_.clear();
    total_ = 0;
}

void
SignalTracker::set(sim::TimeUs now, std::int64_t value)
{
    if (!started_) {
        start(now, value);
        return;
    }
    if (value == value_)
        return;
    hist_.record(value_, now - last_);
    last_ = now;
    value_ = value;
}

void
SignalTracker::finish(sim::TimeUs now)
{
    if (!started_)
        return;
    hist_.record(value_, now - last_);
    last_ = now;
}

}  // namespace splitwise::metrics
