#ifndef SPLITWISE_METRICS_QUANTILE_SKETCH_H_
#define SPLITWISE_METRICS_QUANTILE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <map>

namespace splitwise::metrics {

/**
 * Streaming quantile sketch with bounded relative error
 * (DDSketch-style logarithmic buckets).
 *
 * Values are folded into geometrically spaced buckets of ratio
 * gamma = (1 + alpha) / (1 - alpha); any percentile estimate is
 * within a factor (1 +/- alpha) of the true order statistic, while
 * memory stays O(log(max/min) / alpha) buckets regardless of sample
 * count - the scaling answer to Summary's exact sample store at
 * 10^6+ requests.
 *
 * The API mirrors the used surface of Summary (add/merge/count/
 * mean/min/max/sum/percentile/p50/p90/p99/clear) so reporting code
 * can run on either backend. count, sum, mean, min, and max are
 * tracked exactly; only interior percentiles are approximate.
 *
 * Merging adds bucket counts, so merged results are independent of
 * merge order and thread count - the property the jobs-1-vs-8
 * byte-identical report gate relies on.
 */
class QuantileSketch {
  public:
    /** @param alpha Relative-error bound; must be in (0, 1). */
    explicit QuantileSketch(double alpha = 0.005);

    /** Add one sample. Non-positive values land in the zero bucket. */
    void add(double value);

    /** Merge another sketch; alphas must match (fatal otherwise). */
    void merge(const QuantileSketch& other);

    /** Number of samples recorded (exact). */
    std::size_t count() const { return count_; }

    /** True when no samples have been recorded. */
    bool empty() const { return count_ == 0; }

    /** Arithmetic mean (exact); 0 when empty. */
    double mean() const;

    /** Smallest sample (exact); 0 when empty. */
    double min() const;

    /** Largest sample (exact); 0 when empty. */
    double max() const;

    /** Sum of all samples (exact). */
    double sum() const { return sum_; }

    /**
     * Percentile estimate within the relative-error bound, clamped
     * to the exact [min, max] envelope.
     *
     * @param p Percentile in [0, 100]; out-of-range values clamp to
     *     the bounds. 0 when empty; NaN when @p p is NaN (matching
     *     Summary).
     */
    double percentile(double p) const;

    /** Shorthand for common percentiles. */
    double p50() const { return percentile(50.0); }
    double p90() const { return percentile(90.0); }
    double p99() const { return percentile(99.0); }

    /** Drop all samples (bucket storage is released). */
    void clear();

    /** Configured relative-error bound. */
    double alpha() const { return alpha_; }

    /** Occupied bucket count - the sketch's actual memory footprint. */
    std::size_t bucketCount() const { return buckets_.size(); }

  private:
    /** Bucket index of a positive value. */
    std::int32_t indexOf(double value) const;

    /** Representative value of a bucket (geometric midpoint). */
    double valueOf(std::int32_t index) const;

    double alpha_;
    double gamma_;
    double logGamma_;
    /** Occupied log-spaced buckets, ordered by index for the
     *  deterministic cumulative walk percentile() does. */
    std::map<std::int32_t, std::uint64_t> buckets_;
    /** Samples <= 0 (latencies can legitimately be zero). */
    std::uint64_t zeroCount_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace splitwise::metrics

#endif  // SPLITWISE_METRICS_QUANTILE_SKETCH_H_
