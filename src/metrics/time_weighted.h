#ifndef SPLITWISE_METRICS_TIME_WEIGHTED_H_
#define SPLITWISE_METRICS_TIME_WEIGHTED_H_

#include <cstdint>
#include <map>
#include <vector>

#include "sim/time.h"

namespace splitwise::metrics {

/**
 * Time-weighted distribution of an integer-valued signal.
 *
 * Records how long a signal (e.g. the number of active batched
 * tokens on a machine) spent at each value, and answers CDF queries
 * of the form "fraction of time spent at value <= x". This is the
 * statistic behind the paper's Figures 4 and 17.
 */
class TimeWeightedHistogram {
  public:
    /**
     * Record that the signal held @p value for @p duration.
     *
     * Zero or negative durations are ignored.
     */
    void record(std::int64_t value, sim::TimeUs duration);

    /** Total observed time. */
    sim::TimeUs totalTime() const { return total_; }

    /** Fraction of time spent at values <= @p value; 0 when empty. */
    double cdfAt(std::int64_t value) const;

    /** Time-weighted mean of the signal; 0 when empty. */
    double mean() const;

    /**
     * The full CDF as (value, cumulative fraction) steps in
     * ascending value order.
     */
    std::vector<std::pair<std::int64_t, double>> cdf() const;

    /** Merge another histogram into this one. */
    void merge(const TimeWeightedHistogram& other);

    /** Drop all recordings. */
    void clear();

  private:
    std::map<std::int64_t, sim::TimeUs> timeAt_;
    sim::TimeUs total_ = 0;
};

/**
 * Tracks a piecewise-constant signal over simulated time and feeds a
 * TimeWeightedHistogram.
 *
 * Call set() whenever the signal changes; finish() closes the last
 * segment at the end of the run.
 */
class SignalTracker {
  public:
    /** Start tracking with an initial value at time t0. */
    void
    start(sim::TimeUs t0, std::int64_t initial)
    {
        last_ = t0;
        value_ = initial;
        started_ = true;
    }

    /** Record a change of the signal to @p value at time @p now. */
    void set(sim::TimeUs now, std::int64_t value);

    /** Close the final segment at @p now. */
    void finish(sim::TimeUs now);

    /** The accumulated distribution. */
    const TimeWeightedHistogram& histogram() const { return hist_; }

    /** Current signal value. */
    std::int64_t value() const { return value_; }

  private:
    TimeWeightedHistogram hist_;
    sim::TimeUs last_ = 0;
    std::int64_t value_ = 0;
    bool started_ = false;
};

}  // namespace splitwise::metrics

#endif  // SPLITWISE_METRICS_TIME_WEIGHTED_H_
