#include "metrics/table.h"

#include <cstdio>
#include <sstream>

#include "sim/log.h"

namespace splitwise::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        sim::fatal("Table row width does not match header count");
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        out << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << " " << row[c];
            out << std::string(width[c] - row[c].size(), ' ') << " |";
        }
        out << "\n";
    };
    auto emit_rule = [&]() {
        out << "|";
        for (std::size_t c = 0; c < width.size(); ++c)
            out << std::string(width[c] + 2, '-') << "|";
        out << "\n";
    };

    emit_row(headers_);
    emit_rule();
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

}  // namespace splitwise::metrics
