#include "sched/policy.h"

#include "engine/machine.h"
#include "engine/request.h"
#include "sim/log.h"

namespace splitwise::sched {

const std::vector<PolicyFactory>&
policyRegistry()
{
    static const std::vector<PolicyFactory> registry = {
        {PolicyKind::kDefault, "default",
         "the unmodified two-level scheduler",
         [](const PolicyConfig&) -> std::unique_ptr<Policy> {
             return std::make_unique<DefaultPolicy>();
         }},
        {PolicyKind::kPrefixCache, "prefix",
         "session prefix-cache KV reuse with affinity routing",
         [](const PolicyConfig& config) -> std::unique_ptr<Policy> {
             return std::make_unique<PrefixCachePolicy>(config);
         }},
    };
    return registry;
}

const PolicyFactory*
findPolicy(const std::string& name)
{
    for (const PolicyFactory& factory : policyRegistry()) {
        if (name == factory.name)
            return &factory;
    }
    return nullptr;
}

std::string
policyNames()
{
    std::string names;
    for (const PolicyFactory& factory : policyRegistry()) {
        if (!names.empty())
            names += ", ";
        names += factory.name;
    }
    return names;
}

const char*
policyKindName(PolicyKind kind)
{
    for (const PolicyFactory& factory : policyRegistry()) {
        if (factory.kind == kind)
            return factory.name;
    }
    return "?";
}

bool
parsePolicyKind(const std::string& name, PolicyKind* out)
{
    const PolicyFactory* factory = findPolicy(name);
    if (!factory)
        return false;
    *out = factory->kind;
    return true;
}

Policy::~Policy() = default;

void
Policy::bind(const std::vector<engine::Machine*>&)
{
}

int
Policy::prepareRoute(engine::LiveRequest&)
{
    return -1;
}

void
Policy::onPrefillComplete(engine::Machine&, engine::LiveRequest&)
{
}

void
Policy::onMachineFailed(int)
{
}

PolicyStats
Policy::stats() const
{
    return stats_;
}

PrefixCachePolicy::PrefixCachePolicy(const PolicyConfig& config)
    : config_(config)
{
    if (config_.maxContextTokens < 1)
        sim::fatal("PrefixCachePolicy: bad context cap");
}

void
PrefixCachePolicy::bind(const std::vector<engine::Machine*>& machines)
{
    machines_.clear();
    for (engine::Machine* machine : machines)
        machines_.emplace(machine->id(), machine);
}

int
PrefixCachePolicy::prepareRoute(engine::LiveRequest& request)
{
    request.cachedPrefixTokens = 0;
    const std::uint64_t session = request.spec.session;
    if (session == 0)
        return -1;  // Standalone request; sessions only.
    const auto it = directory_.find(session);
    if (it == directory_.end()) {
        ++stats_.directoryMisses;
        return -1;
    }
    const auto machine = machines_.find(it->second);
    if (machine == machines_.end()) {
        ++stats_.directoryMisses;
        directory_.erase(it);
        return -1;
    }
    const std::int64_t cached =
        machine->second->mls().blocks().lookupPrefix(session);
    if (cached == 0) {
        // Evicted (or wiped by a crash the failure hook has not seen,
        // e.g. a recovered machine): forget the session.
        ++stats_.directoryMisses;
        directory_.erase(it);
        return -1;
    }
    if (!workload::contextPrefixValid(cached, request.spec.promptTokens,
                                      config_.maxContextTokens)) {
        // The prompt reached the API context cap, so the stored
        // context may no longer be a true prefix (sliding window):
        // conservative miss-and-recompute.
        ++stats_.directoryMisses;
        return -1;
    }
    request.cachedPrefixTokens = cached;
    return it->second;
}

void
PrefixCachePolicy::onPrefillComplete(engine::Machine& machine,
                                     engine::LiveRequest& request)
{
    const std::uint64_t session = request.spec.session;
    if (session == 0)
        return;
    // The full prompt context is now resident on this machine; keep
    // it for the session's next turn. The prompt itself was already
    // capped by the generator, so "truncated" reduces to sitting at
    // the cap (accumulateContext pins capped sessions there forever).
    const workload::ContextAccum context{
        request.spec.promptTokens,
        request.spec.promptTokens >= config_.maxContextTokens};
    if (!workload::contextCacheStorable(context, config_.maxContextTokens))
        return;
    if (machine.mls().blocks().storePrefix(session,
                                           request.spec.promptTokens)) {
        directory_[session] = machine.id();
    }
    // On store failure (no reclaimable room) any older directory
    // entry stays: a smaller prefix elsewhere is still a valid one.
}

void
PrefixCachePolicy::onMachineFailed(int machine_id)
{
    // The crash wiped the machine's KV including its cached
    // prefixes; follow-up turns must miss and recompute.
    for (auto it = directory_.begin(); it != directory_.end();) {
        if (it->second == machine_id)
            it = directory_.erase(it);
        else
            ++it;
    }
}

PolicyStats
PrefixCachePolicy::stats() const
{
    PolicyStats out = stats_;
    out.directorySize = directory_.size();
    return out;
}

std::unique_ptr<Policy>
makePolicy(const PolicyConfig& config)
{
    for (const PolicyFactory& factory : policyRegistry()) {
        if (factory.kind == config.kind)
            return factory.make(config);
    }
    sim::fatal("makePolicy: unknown policy kind");
    return nullptr;
}

}  // namespace splitwise::sched
