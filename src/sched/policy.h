#ifndef SPLITWISE_SCHED_POLICY_H_
#define SPLITWISE_SCHED_POLICY_H_

/**
 * @file
 * Scheduling-policy plug-in seam.
 *
 * The two-level scheduler (cluster-level routing in ClusterScheduler,
 * machine-level batching in Mls) is the *mechanism*; a sched::Policy
 * composes serving techniques on top of it through a small set of
 * hooks called at routing and prefill-completion time. The default
 * policy implements every hook as the identity, so selecting it is
 * byte-identical to having no policy at all — the contract the golden
 * reports pin. PrefixCachePolicy is the first non-default policy:
 * session prefix-cache KV reuse with affinity routing. The same seam
 * is where speculative decoding and LoRA tenancy land next.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/multi_turn.h"

namespace splitwise::engine {
class Machine;
struct LiveRequest;
}  // namespace splitwise::engine

namespace splitwise::sched {

enum class PolicyKind {
    /** The unmodified two-level scheduler (identity hooks). */
    kDefault,
    /** Session prefix-cache KV reuse with affinity routing. */
    kPrefixCache,
};

/** "default" / "prefix". */
const char* policyKindName(PolicyKind kind);

/** Inverse of policyKindName; false on unknown names. */
bool parsePolicyKind(const std::string& name, PolicyKind* out);

struct PolicyConfig;
class Policy;

/**
 * One registry entry: a stable CLI name, a one-line description for
 * --help/error text, and the factory. The registry table is the
 * single authority mapping names to policies — policyKindName,
 * parsePolicyKind, makePolicy, and the --policy bench/server flag
 * are all views over it.
 */
struct PolicyFactory {
    PolicyKind kind;
    const char* name;
    const char* description;
    std::unique_ptr<Policy> (*make)(const PolicyConfig& config);
};

/** Every registered policy, in a stable (enum) order. */
const std::vector<PolicyFactory>& policyRegistry();

/** Registry entry for @p name; nullptr on unknown names. */
const PolicyFactory* findPolicy(const std::string& name);

/** The registered names, comma-separated — for CLI error text. */
std::string policyNames();

/** Policy selection plus the knobs of the non-default policies. */
struct PolicyConfig {
    PolicyKind kind = PolicyKind::kDefault;
    /**
     * The API context cap the multi-turn workload was generated
     * under (prefix policy only). Cache-key validity must agree with
     * the generator about truncation, so both default to
     * workload::kDefaultMaxContextTokens; see contextPrefixValid().
     */
    std::int64_t maxContextTokens = workload::kDefaultMaxContextTokens;
};

/** Cluster-level counters a policy accumulates across a run. */
struct PolicyStats {
    /**
     * Session lookups that could not name a prefix machine: session
     * never completed a prefill, its machine crashed, its prefix was
     * evicted, or the prompt hit the context cap. Machine-level
     * acquire failures are counted by BlockManager instead.
     */
    std::uint64_t directoryMisses = 0;
    /** Requests routed to the machine holding their prefix. */
    std::uint64_t affinityRoutes = 0;
    /** Sessions currently tracked in the directory. */
    std::size_t directorySize = 0;
};

/**
 * A scheduling policy: hooks invoked by the cluster around the
 * two-level scheduler. Hooks run synchronously inside the event that
 * triggers them, so a prepareRoute() decision and the routing it
 * biases are atomic with respect to simulated time.
 */
class Policy {
  public:
    virtual ~Policy();

    virtual PolicyKind kind() const = 0;
    const char* name() const { return policyKindName(kind()); }

    /** The cluster's machines, indexable by Machine::id(). Called
     *  once before the run starts. */
    virtual void bind(const std::vector<engine::Machine*>& machines);

    /**
     * Called before a request is routed. The policy may tag the
     * request (e.g. LiveRequest::cachedPrefixTokens) and return the
     * machine id the router should prefer for the prompt phase, or
     * -1 for no preference. The router is free to ignore the
     * preference (machine unrouted/failed); machine-level fallback
     * must keep the request correct regardless.
     */
    virtual int prepareRoute(engine::LiveRequest& request);

    /** Called when a request's full prompt has been computed on
     *  @p machine, before the completion is routed onward. */
    virtual void onPrefillComplete(engine::Machine& machine,
                                   engine::LiveRequest& request);

    /** Called when @p machine_id crashes (its KV and cached prefixes
     *  are gone). */
    virtual void onMachineFailed(int machine_id);

    /** Called by the router when it honoured a prepareRoute()
     *  preference. */
    void noteAffinityRoute() { ++stats_.affinityRoutes; }

    virtual PolicyStats stats() const;

  protected:
    PolicyStats stats_;
};

/** The identity policy: the two-level scheduler, unchanged. */
class DefaultPolicy final : public Policy {
  public:
    PolicyKind kind() const override { return PolicyKind::kDefault; }
};

/**
 * Session prefix-cache KV reuse.
 *
 * Cache key: the session id — in this token-count simulation the
 * session *is* the content identity, and the cached value is how many
 * leading tokens of the session's context are resident (always
 * block-manager-resident on exactly the machine that last prefilled
 * the session). A directory maps session → that machine; routing
 * prefers it (session affinity), submitPrompt pins the prefix
 * (refcount+1), and the machine prefills only the un-cached suffix.
 * Eviction (LRU at refcount zero), a crashed machine, or a context
 * at the API cap all degrade to miss-and-recompute.
 */
class PrefixCachePolicy final : public Policy {
  public:
    explicit PrefixCachePolicy(const PolicyConfig& config);

    PolicyKind kind() const override { return PolicyKind::kPrefixCache; }
    void bind(const std::vector<engine::Machine*>& machines) override;
    int prepareRoute(engine::LiveRequest& request) override;
    void onPrefillComplete(engine::Machine& machine,
                           engine::LiveRequest& request) override;
    void onMachineFailed(int machine_id) override;
    PolicyStats stats() const override;

  private:
    PolicyConfig config_;
    std::unordered_map<int, engine::Machine*> machines_;
    /** session → machine id that holds its cached prefix. */
    std::unordered_map<std::uint64_t, int> directory_;
};

/** Construct the policy selected by @p config; never null. */
std::unique_ptr<Policy> makePolicy(const PolicyConfig& config);

}  // namespace splitwise::sched

#endif  // SPLITWISE_SCHED_POLICY_H_
