#ifndef SPLITWISE_TELEMETRY_METRICS_REGISTRY_H_
#define SPLITWISE_TELEMETRY_METRICS_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace splitwise::telemetry {

/**
 * A monotonically increasing event counter owned by a
 * MetricsRegistry. Incrementing is a single add on a plain integer,
 * so counters are safe to keep on simulation hot paths.
 */
class Counter {
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Registry of named cluster metrics: owned counters, callback-backed
 * counters (existing stats structs exposed without restructuring
 * them), and callback gauges for instantaneous signals.
 *
 * Registration order is the export order - the time-series sampler
 * emits one column per entry, in this order, every sampling tick.
 */
class MetricsRegistry {
  public:
    /**
     * Create (or fetch) an owned counter. Pointers stay valid for
     * the registry's lifetime.
     */
    Counter* counter(const std::string& name);

    /** Expose an externally maintained counter through a reader. */
    void addCounterFn(const std::string& name,
                      std::function<std::uint64_t()> read);

    /** Register an instantaneous gauge. */
    void addGauge(const std::string& name, std::function<double()> read);

    /** Entry names in registration order. */
    const std::vector<std::string>& names() const { return names_; }

    /** Sample every entry, in names() order. */
    std::vector<double> sampleValues() const;

    /** Value of a (owned or callback) counter; 0 when unknown. */
    std::uint64_t counterValue(const std::string& name) const;

    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry {
        Counter* owned = nullptr;
        std::function<std::uint64_t()> counterRead;
        std::function<double()> gaugeRead;
    };

    void addEntry(const std::string& name, Entry entry);

    std::deque<Counter> counters_;  // deque: stable addresses
    std::vector<std::string> names_;
    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace splitwise::telemetry

#endif  // SPLITWISE_TELEMETRY_METRICS_REGISTRY_H_
