#ifndef SPLITWISE_TELEMETRY_SPAN_TRACKER_H_
#define SPLITWISE_TELEMETRY_SPAN_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/summary.h"
#include "sim/time.h"

namespace splitwise::telemetry {

/**
 * The request lifecycle phases latency is attributed to. A request's
 * timeline is a contiguous chain of these — every simulated
 * microsecond between arrival and completion belongs to exactly one
 * phase, which is why per-phase sums reproduce E2E exactly.
 */
enum class SpanPhase : std::uint8_t {
    /** Waiting in a machine's prompt queue. */
    kQueue = 0,
    /** Queue wait taken while the brownout ladder was engaged. */
    kBrownoutStall,
    /** Prompt computation (all chunks, including inter-chunk waits). */
    kPrefill,
    /** Blocked waiting for destination KV memory. */
    kKvStall,
    /** KV cache transfer (or checkpoint restore) in flight. */
    kKvTransfer,
    /** Retry backoff between failed KV-transfer attempts. */
    kKvBackoff,
    /** Token generation batches (including inter-batch waits). */
    kDecode,
    /** Wall time lost to a machine crash: everything the request did
     *  since its last (re)start, folded on restart. */
    kRestartPenalty,
    /** Suffix-only prompt computation after a session prefix-cache
     *  hit (prefix policy); kept distinct from kPrefill so reports
     *  separate cache-assisted prefills from full ones. */
    kPrefixHit,
};

inline constexpr int kSpanPhaseCount = 9;

/** Stable lower-case phase name used in JSON and reports. */
const char* spanPhaseName(SpanPhase phase);

/** One contiguous stretch of a request's life in a single phase. */
struct SpanSegment {
    SpanPhase phase = SpanPhase::kQueue;
    sim::TimeUs startUs = 0;
    /** kSpanOpen while the segment is still running. */
    sim::TimeUs endUs = 0;
};

/** Sentinel end for a still-open segment. */
inline constexpr sim::TimeUs kSpanOpen = -1;

/** Full causal span timeline of one request. */
struct SpanTimeline {
    std::uint64_t requestId = 0;
    sim::TimeUs arrivalUs = 0;
    /** kSpanOpen while the request is still live. */
    sim::TimeUs doneUs = kSpanOpen;
    int restarts = 0;
    /** Contiguous: segments[i].endUs == segments[i+1].startUs. */
    std::vector<SpanSegment> segments;
};

/** Per-phase attribution statistics over completed requests. */
struct PhaseStat {
    SpanPhase phase = SpanPhase::kQueue;
    /** Requests that spent any time in this phase. */
    std::size_t requests = 0;
    /** Total ms across all completed requests (sums to E2E). */
    double totalMs = 0.0;
    /** Distribution over the requests that touched the phase. */
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
};

/**
 * Critical-path latency attribution over a whole run: where E2E time
 * went, per phase. attributedTotalMs equals e2eTotalMs by
 * construction (contiguous timelines); reporting both lets consumers
 * assert the invariant instead of trusting it.
 */
struct LatencyBreakdown {
    bool enabled = false;
    std::size_t requests = 0;
    double e2eTotalMs = 0.0;
    double attributedTotalMs = 0.0;
    std::vector<PhaseStat> phases;
};

/** One SLO-offender exemplar: a full timeline kept for postmortem. */
struct SpanExemplar {
    /** Worst per-metric Table VI slowdown of the request. */
    double slowdown = 0.0;
    SpanTimeline timeline;
};

struct SpanTrackerConfig {
    /** Worst-offender timelines retained (0 disables exemplars). */
    int exemplarK = 0;
    /** Flight-recorder ring size (most recent completed timelines). */
    std::size_t flightRecorderCapacity = 256;
};

/**
 * Records per-request causal span timelines and aggregates them into
 * a latency breakdown, SLO-breach exemplars, and a bounded
 * flight-recorder ring.
 *
 * Engine hooks call transition() as a request changes phase; the
 * cluster calls restart() when a crash throws a request back to
 * admission and complete() when it finishes. Live timelines are held
 * in pooled slots reused across requests (segment vectors keep their
 * capacity), so steady-state tracking does no per-transition heap
 * allocation once warm.
 *
 * Memory is O(live requests + flight ring + K exemplars), never
 * O(completed requests): completed timelines are folded into
 * per-phase Summary aggregates and recycled.
 */
class SpanTracker {
  public:
    explicit SpanTracker(SpanTrackerConfig config = {});

    /**
     * Brownout ladder level from the CLS; while > 0, queue time is
     * recorded as kBrownoutStall so degraded-mode waiting is
     * attributable separately from ordinary queueing.
     */
    void setBrownoutLevel(int level);

    /**
     * Move a request into @p phase at @p now. Creates the timeline on
     * first sight (arrival = now); a repeat of the open phase is a
     * no-op, anything else closes the open segment and opens a new
     * one — the exclusive-phase idiom shared with TraceRecorder.
     */
    void transition(std::uint64_t request_id, SpanPhase phase,
                    sim::TimeUs now);

    /**
     * Fold everything the request did since its last (re)start into a
     * single kRestartPenalty segment ending at @p now — the work was
     * lost, so it is attributed as crash penalty, not as useful
     * prefill/decode. Leaves no open segment; the re-admission hook
     * opens the next one at the same timestamp.
     */
    void restart(std::uint64_t request_id, sim::TimeUs now);

    /**
     * Finish a request: closes the open segment, folds the timeline
     * into the per-phase aggregates, considers it for the exemplar
     * top-K (ranked by @p slowdown), pushes it into the flight
     * recorder, and recycles the slot.
     */
    void complete(std::uint64_t request_id, sim::TimeUs now,
                  double slowdown);

    /** Number of live (incomplete) timelines. */
    std::size_t liveCount() const { return live_.size(); }

    /** Live timeline of a request, or nullptr. */
    const SpanTimeline* liveTimeline(std::uint64_t request_id) const;

    /** Completed-request count folded into the aggregates. */
    std::size_t completedCount() const { return completed_; }

    /**
     * Structural self-check used by the DST invariant checker: every
     * live timeline must be contiguous from arrival, with exactly one
     * open segment, in phase-legal order. Returns "" when consistent,
     * else a description of the first violation.
     */
    std::string integrityError() const;

    /** Aggregate per-phase attribution over completed requests. */
    LatencyBreakdown breakdown() const;

    /** Worst-offender exemplars, worst first. */
    const std::vector<SpanExemplar>& exemplars() const {
        return exemplars_;
    }

    /**
     * Breakdown + exemplar timelines as a standalone JSON document —
     * what `--breakdown-out` writes.
     */
    std::string attributionJson() const;

    /**
     * Flight-recorder dump: the most recent completed timelines
     * (oldest first) plus all still-live ones, as JSON. Written when
     * a DST invariant fires so the last moments before the violation
     * are reconstructable.
     */
    std::string flightRecorderJson() const;

  private:
    struct Slot {
        SpanTimeline timeline;
        /** First segment index of the current incarnation. */
        std::size_t incarnationStart = 0;
        /** Sim time the current incarnation began (== arrival until
         *  the first restart). */
        sim::TimeUs incarnationStartUs = 0;
    };

    Slot& slotOf(std::uint64_t request_id);
    void closeOpenSegment(Slot& slot, sim::TimeUs now);
    /** nullptr when @p tl is structurally sound, else the defect. */
    static const char* timelineDefect(const SpanTimeline& tl,
                                      std::uint64_t id);
    static void appendTimelineJson(std::string& out,
                                   const SpanTimeline& timeline);

    SpanTrackerConfig config_;
    int brownoutLevel_ = 0;
    std::vector<Slot> slots_;
    std::vector<std::size_t> freeSlots_;
    /** requestId -> index into slots_. */
    std::unordered_map<std::uint64_t, std::size_t> live_;

    std::size_t completed_ = 0;
    double e2eTotalMs_ = 0.0;
    double attributedTotalMs_ = 0.0;
    metrics::Summary phaseMs_[kSpanPhaseCount];
    double phaseTotalMs_[kSpanPhaseCount] = {};

    /** Sorted worst-first, at most exemplarK entries. */
    std::vector<SpanExemplar> exemplars_;

    /** Fixed-capacity ring of recent completed timelines. */
    std::vector<SpanTimeline> ring_;
    std::size_t ringNext_ = 0;
    std::size_t ringCount_ = 0;
};

}  // namespace splitwise::telemetry

#endif  // SPLITWISE_TELEMETRY_SPAN_TRACKER_H_
