#include "telemetry/metrics_registry.h"

#include "sim/log.h"

namespace splitwise::telemetry {

void
MetricsRegistry::addEntry(const std::string& name, Entry entry)
{
    if (index_.count(name))
        sim::fatal("MetricsRegistry: duplicate metric '" + name + "'");
    index_[name] = entries_.size();
    names_.push_back(name);
    entries_.push_back(std::move(entry));
}

Counter*
MetricsRegistry::counter(const std::string& name)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        Counter* owned = entries_[it->second].owned;
        if (!owned)
            sim::fatal("MetricsRegistry: '" + name + "' is not a counter");
        return owned;
    }
    counters_.emplace_back();
    Entry entry;
    entry.owned = &counters_.back();
    addEntry(name, std::move(entry));
    return &counters_.back();
}

void
MetricsRegistry::addCounterFn(const std::string& name,
                              std::function<std::uint64_t()> read)
{
    Entry entry;
    entry.counterRead = std::move(read);
    addEntry(name, std::move(entry));
}

void
MetricsRegistry::addGauge(const std::string& name,
                          std::function<double()> read)
{
    Entry entry;
    entry.gaugeRead = std::move(read);
    addEntry(name, std::move(entry));
}

std::vector<double>
MetricsRegistry::sampleValues() const
{
    std::vector<double> values;
    values.reserve(entries_.size());
    for (const Entry& e : entries_) {
        if (e.owned)
            values.push_back(static_cast<double>(e.owned->value()));
        else if (e.counterRead)
            values.push_back(static_cast<double>(e.counterRead()));
        else
            values.push_back(e.gaugeRead());
    }
    return values;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string& name) const
{
    const auto it = index_.find(name);
    if (it == index_.end())
        return 0;
    const Entry& e = entries_[it->second];
    if (e.owned)
        return e.owned->value();
    if (e.counterRead)
        return e.counterRead();
    return 0;
}

}  // namespace splitwise::telemetry
