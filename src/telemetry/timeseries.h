#ifndef SPLITWISE_TELEMETRY_TIMESERIES_H_
#define SPLITWISE_TELEMETRY_TIMESERIES_H_

#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "telemetry/metrics_registry.h"

namespace splitwise::telemetry {

/**
 * A sampled table of cluster metrics over simulated time: one row
 * per sample, first column "t_s" (simulated seconds), then one
 * column per registry entry in registration order.
 *
 * Plain data, cheap to copy into a RunReport and hand to external
 * plotting tools via toCsv()/toJson().
 */
struct TimeSeries {
    std::vector<std::string> columns;
    std::vector<std::vector<double>> rows;

    bool empty() const { return rows.empty(); }

    /** Index of @p name in columns; -1 when absent. */
    int columnIndex(const std::string& name) const;

    /** All samples of one column, in row order. */
    std::vector<double> column(const std::string& name) const;

    /** CSV with a header line. */
    std::string toCsv() const;

    /**
     * JSON object: columns, rows, and a per-column summary
     * (mean/min/max plus an equal-width histogram of
     * @p histogram_buckets buckets).
     */
    std::string toJson(std::size_t histogram_buckets = 8) const;

    /** Write toCsv() to @p path. */
    void writeCsv(const std::string& path) const;
};

/**
 * Samples a MetricsRegistry on a fixed simulated-time grid, plus
 * on-event samples at caller-chosen instants (fault epochs).
 *
 * The sampler observes the event loop through the Simulator's
 * time-advance hook rather than scheduling its own events: a
 * self-rescheduling sample event would keep the queue from ever
 * draining, and the hook costs the loop one branch when unused. Grid
 * samples for every interval boundary crossed by a time advance are
 * emitted before the advancing event executes, so each row captures
 * the cluster state that was current at that boundary.
 */
class TimeSeriesSampler {
  public:
    /** @param interval_us Grid spacing; must be positive. */
    TimeSeriesSampler(sim::Simulator& simulator,
                      const MetricsRegistry& registry,
                      sim::TimeUs interval_us);

    /** Install the simulator hook and emit the t=0 row. */
    void install();

    /** On-event sample at the current simulated time. */
    void sampleNow();

    /**
     * Emit the final row at the current simulated time and detach
     * from the simulator.
     */
    void finish();

    sim::TimeUs intervalUs() const { return interval_; }

    const TimeSeries& series() const { return series_; }

  private:
    void onAdvance(sim::TimeUs next);
    void emitRow(sim::TimeUs t);

    sim::Simulator& simulator_;
    const MetricsRegistry& registry_;
    sim::TimeUs interval_;
    sim::TimeUs nextSample_ = 0;
    sim::TimeUs lastRowTs_ = -1;
    TimeSeries series_;
};

}  // namespace splitwise::telemetry

#endif  // SPLITWISE_TELEMETRY_TIMESERIES_H_
