#ifndef SPLITWISE_TELEMETRY_TRACE_RECORDER_H_
#define SPLITWISE_TELEMETRY_TRACE_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace splitwise::telemetry {

/**
 * One key/value pair attached to a trace event.
 *
 * Values are pre-encoded as JSON fragments at construction time, so
 * the recorder never needs type dispatch at export.
 */
struct TraceArg {
    std::string key;
    /** Already-valid JSON value (number or quoted string). */
    std::string json;

    TraceArg(std::string k, std::int64_t v);
    TraceArg(std::string k, std::uint64_t v);
    TraceArg(std::string k, int v);
    TraceArg(std::string k, double v);
    TraceArg(std::string k, const char* v);
    TraceArg(std::string k, const std::string& v);
};

using TraceArgs = std::vector<TraceArg>;

/**
 * A (pid, tid) pair addressing one horizontal lane of the trace.
 *
 * The Chrome trace_event format groups lanes (threads) under
 * processes; we map the simulation onto three synthetic processes:
 * requests (one lane per request), machines (one lane per machine),
 * and the cluster control plane (one lane).
 */
struct Track {
    int pid = 0;
    std::int64_t tid = 0;
};

/**
 * Records simulation spans and instant events and exports them as
 * Chrome/Perfetto `trace_event` JSON, so a run opens directly in
 * ui.perfetto.dev or chrome://tracing.
 *
 * Span discipline: begin()/end() nest per track (a per-track stack).
 * transition() implements the exclusive-phase idiom used for request
 * lifecycles - at most one span open per track, each transition
 * closing the previous phase. Export fails loudly (panic) on
 * unmatched end(); finish-time leftovers are the caller's job to
 * close (see close()).
 *
 * All timestamps are simulated microseconds, which is exactly the
 * unit the trace_event format expects in "ts".
 */
class TraceRecorder {
  public:
    /** Lane of one request's lifecycle. */
    static Track requestTrack(std::uint64_t request_id);
    /** Lane of one machine's iterations and fault epochs. */
    static Track machineTrack(int machine_id);
    /** Lane of cluster-level control events. */
    static Track clusterTrack();

    /** Attach a human-readable lane name (Perfetto thread_name). */
    void setTrackName(Track track, std::string name);

    /** Open a span on @p track. */
    void begin(Track track, const char* name, sim::TimeUs ts,
               TraceArgs args = {});

    /** Close the innermost open span on @p track. */
    void end(Track track, sim::TimeUs ts);

    /**
     * Exclusive phase change: when the open span on @p track already
     * carries @p name this is a no-op; otherwise the open span (if
     * any) is closed and a new one opened.
     */
    void transition(Track track, const char* name, sim::TimeUs ts,
                    TraceArgs args = {});

    /** Close whatever span is open on @p track; no-op when none. */
    void close(Track track, sim::TimeUs ts);

    /** Record a zero-duration instant event. */
    void instant(Track track, const char* name, sim::TimeUs ts,
                 TraceArgs args = {});

    /**
     * Flow events ('s'/'t'/'f') draw an arrow between tracks sharing
     * @p flow_id — how one request's KV handoff is linked across its
     * prompt-machine slice, its request-track transfer span, and its
     * token-machine slice. The trace_event format binds each flow
     * point to the slice *open on that track at @p ts*, so callers
     * must emit them while the relevant span is open.
     */
    void flowStart(Track track, const char* name, sim::TimeUs ts,
                   std::uint64_t flow_id);

    /** Intermediate flow point (same binding rule as flowStart). */
    void flowStep(Track track, const char* name, sim::TimeUs ts,
                  std::uint64_t flow_id);

    /** Terminating flow point (emitted with bp:"e"). */
    void flowEnd(Track track, const char* name, sim::TimeUs ts,
                 std::uint64_t flow_id);

    /**
     * Cross-machine handoff bookkeeping: the source side marks a flow
     * id as pending; the destination side takes it when its first
     * slice opens and emits the flowEnd there. take returns false when
     * the id was never marked (e.g. a locally-decoded request).
     */
    void markPendingFlow(std::uint64_t flow_id);
    bool takePendingFlow(std::uint64_t flow_id);
    bool hasPendingFlows() const { return !pendingFlows_.empty(); }

    /** Number of recorded events (metadata excluded). */
    std::size_t eventCount() const { return events_.size(); }

    /** Number of spans currently open across all tracks. */
    std::size_t openSpans() const;

    /**
     * Export as a Chrome trace_event JSON object. Events are stably
     * sorted by timestamp so every track reads monotonically.
     */
    std::string toJson() const;

    /** Write toJson() to @p path. */
    void writeFile(const std::string& path) const;

  private:
    struct Event {
        char ph = 'i';  // 'B', 'E', 'i', or flow 's'/'t'/'f'
        Track track;
        sim::TimeUs ts = 0;
        const char* name = "";
        /** Flow binding id; meaningful only for 's'/'t'/'f'. */
        std::uint64_t flowId = 0;
        TraceArgs args;
    };

    using TrackKey = std::pair<int, std::int64_t>;
    static TrackKey key(Track t) { return {t.pid, t.tid}; }

    std::vector<Event> events_;
    /** Stack of open span names per track. */
    std::map<TrackKey, std::vector<const char*>> open_;
    std::map<TrackKey, std::string> trackNames_;
    /** Flow ids awaiting their destination-side flowEnd. */
    std::unordered_set<std::uint64_t> pendingFlows_;
};

}  // namespace splitwise::telemetry

#endif  // SPLITWISE_TELEMETRY_TRACE_RECORDER_H_
