#include "telemetry/trace_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/log.h"

namespace splitwise::telemetry {

namespace {

/** The three synthetic trace processes. */
constexpr int kRequestsPid = 1;
constexpr int kMachinesPid = 2;
constexpr int kClusterPid = 3;

const char*
pidName(int pid)
{
    switch (pid) {
      case kRequestsPid: return "requests";
      case kMachinesPid: return "machines";
      case kClusterPid: return "cluster";
    }
    return "?";
}

const char*
pidCategory(int pid)
{
    switch (pid) {
      case kRequestsPid: return "request";
      case kMachinesPid: return "machine";
      case kClusterPid: return "cluster";
    }
    return "event";
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
numJson(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

}  // namespace

TraceArg::TraceArg(std::string k, std::int64_t v)
    : key(std::move(k)), json(std::to_string(v))
{
}

TraceArg::TraceArg(std::string k, std::uint64_t v)
    : key(std::move(k)), json(std::to_string(v))
{
}

TraceArg::TraceArg(std::string k, int v)
    : key(std::move(k)), json(std::to_string(v))
{
}

TraceArg::TraceArg(std::string k, double v)
    : key(std::move(k)), json(numJson(v))
{
}

TraceArg::TraceArg(std::string k, const char* v)
    : key(std::move(k)), json('"' + jsonEscape(v) + '"')
{
}

TraceArg::TraceArg(std::string k, const std::string& v)
    : key(std::move(k)), json('"' + jsonEscape(v) + '"')
{
}

Track
TraceRecorder::requestTrack(std::uint64_t request_id)
{
    return {kRequestsPid, static_cast<std::int64_t>(request_id)};
}

Track
TraceRecorder::machineTrack(int machine_id)
{
    return {kMachinesPid, machine_id};
}

Track
TraceRecorder::clusterTrack()
{
    return {kClusterPid, 0};
}

void
TraceRecorder::setTrackName(Track track, std::string name)
{
    trackNames_[key(track)] = std::move(name);
}

void
TraceRecorder::begin(Track track, const char* name, sim::TimeUs ts,
                     TraceArgs args)
{
    open_[key(track)].push_back(name);
    events_.push_back({'B', track, ts, name, 0, std::move(args)});
}

void
TraceRecorder::end(Track track, sim::TimeUs ts)
{
    auto it = open_.find(key(track));
    if (it == open_.end() || it->second.empty())
        sim::panic("TraceRecorder::end without a matching begin");
    it->second.pop_back();
    events_.push_back({'E', track, ts, "", 0, {}});
}

void
TraceRecorder::transition(Track track, const char* name, sim::TimeUs ts,
                          TraceArgs args)
{
    auto it = open_.find(key(track));
    if (it != open_.end() && !it->second.empty()) {
        if (std::strcmp(it->second.back(), name) == 0)
            return;  // already in this phase
        end(track, ts);
    }
    begin(track, name, ts, std::move(args));
}

void
TraceRecorder::close(Track track, sim::TimeUs ts)
{
    auto it = open_.find(key(track));
    if (it == open_.end())
        return;
    while (!it->second.empty())
        end(track, ts);
}

void
TraceRecorder::instant(Track track, const char* name, sim::TimeUs ts,
                       TraceArgs args)
{
    events_.push_back({'i', track, ts, name, 0, std::move(args)});
}

void
TraceRecorder::flowStart(Track track, const char* name, sim::TimeUs ts,
                         std::uint64_t flow_id)
{
    events_.push_back({'s', track, ts, name, flow_id, {}});
}

void
TraceRecorder::flowStep(Track track, const char* name, sim::TimeUs ts,
                        std::uint64_t flow_id)
{
    events_.push_back({'t', track, ts, name, flow_id, {}});
}

void
TraceRecorder::flowEnd(Track track, const char* name, sim::TimeUs ts,
                       std::uint64_t flow_id)
{
    events_.push_back({'f', track, ts, name, flow_id, {}});
}

void
TraceRecorder::markPendingFlow(std::uint64_t flow_id)
{
    pendingFlows_.insert(flow_id);
}

bool
TraceRecorder::takePendingFlow(std::uint64_t flow_id)
{
    return pendingFlows_.erase(flow_id) > 0;
}

std::size_t
TraceRecorder::openSpans() const
{
    std::size_t n = 0;
    for (const auto& [track, stack] : open_)
        n += stack.size();
    return n;
}

std::string
TraceRecorder::toJson() const
{
    // Stable timestamp sort keeps same-ts events in causal record
    // order (an E recorded before a B at the same instant stays
    // first), which is what per-track monotonicity validators and
    // Perfetto's importer expect.
    std::vector<std::size_t> order(events_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return events_[a].ts < events_[b].ts;
                     });

    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out << ',';
        first = false;
    };

    // Metadata: process names, plus any registered lane names.
    for (int pid : {kRequestsPid, kMachinesPid, kClusterPid}) {
        sep();
        out << "{\"ph\":\"M\",\"pid\":" << pid
            << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
            << pidName(pid) << "\"}}";
    }
    for (const auto& [track, name] : trackNames_) {
        sep();
        out << "{\"ph\":\"M\",\"pid\":" << track.first
            << ",\"tid\":" << track.second
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << jsonEscape(name) << "\"}}";
    }

    for (std::size_t idx : order) {
        const Event& ev = events_[idx];
        sep();
        out << "{\"ph\":\"" << ev.ph << "\",\"pid\":" << ev.track.pid
            << ",\"tid\":" << ev.track.tid << ",\"ts\":" << ev.ts;
        const bool flow = ev.ph == 's' || ev.ph == 't' || ev.ph == 'f';
        if (ev.ph != 'E') {
            out << ",\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
                << (flow ? "flow" : pidCategory(ev.track.pid)) << '"';
        }
        if (ev.ph == 'i')
            out << ",\"s\":\"t\"";
        if (flow) {
            out << ",\"id\":" << ev.flowId;
            // Bind the terminating point to the *enclosing* slice end,
            // the convention Perfetto's importer expects for arrows
            // that land inside a slice rather than at its start.
            if (ev.ph == 'f')
                out << ",\"bp\":\"e\"";
        }
        if (!ev.args.empty()) {
            out << ",\"args\":{";
            for (std::size_t i = 0; i < ev.args.size(); ++i) {
                if (i)
                    out << ',';
                out << '"' << jsonEscape(ev.args[i].key)
                    << "\":" << ev.args[i].json;
            }
            out << '}';
        }
        out << '}';
    }
    out << "]}";
    return out.str();
}

void
TraceRecorder::writeFile(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("TraceRecorder::writeFile: cannot open " + path);
    out << toJson() << '\n';
}

}  // namespace splitwise::telemetry
