#ifndef SPLITWISE_TELEMETRY_TELEMETRY_H_
#define SPLITWISE_TELEMETRY_TELEMETRY_H_

/**
 * @file
 * Telemetry facade: configuration plus the TELEM_* instrumentation
 * macros used on simulation hot paths.
 *
 * Build-time switch: configuring with -DSPLITWISE_TELEMETRY=OFF
 * defines SPLITWISE_TELEMETRY_DISABLED, compiling every TELEM_*
 * macro to nothing - the event loop pays literally zero cost for
 * tracing hooks. With telemetry compiled in but no recorder attached
 * (the default at runtime), each macro costs one pointer test.
 */

#include "sim/time.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/span_tracker.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace_recorder.h"

#ifdef SPLITWISE_TELEMETRY_DISABLED
#define SPLITWISE_TELEMETRY_ENABLED 0
#else
#define SPLITWISE_TELEMETRY_ENABLED 1
#endif

namespace splitwise::telemetry {

/** Per-run telemetry switches, carried inside core::SimConfig. */
struct TelemetryConfig {
    /** Record request/machine lifecycle spans for Perfetto export. */
    bool traceEnabled = false;
    /**
     * Fixed time-series sampling interval; 0 disables the sampler.
     * Fault epochs additionally trigger on-event samples.
     */
    sim::TimeUs sampleIntervalUs = 0;
    /**
     * Emit per-machine gauge columns (queue depth, KV tokens,
     * residents, active tokens, power) in addition to the pool and
     * cluster aggregates.
     */
    bool perMachineSeries = true;

    /**
     * Track per-request causal span timelines (SpanTracker): latency
     * breakdown, SLO-breach exemplars, flight recorder. Independent
     * of traceEnabled — span tracking holds O(live requests), not
     * O(events), so it scales to runs where full tracing cannot.
     */
    bool spanTracking = false;

    /** Worst-offender exemplar timelines kept (0 disables). */
    int exemplarK = 3;

    /** Flight-recorder ring capacity (recent completed timelines). */
    int flightRecorderCapacity = 256;

    /** True when any telemetry stream is requested. */
    bool
    any() const
    {
        return traceEnabled || spanTracking || sampleIntervalUs > 0;
    }
};

}  // namespace splitwise::telemetry

#if SPLITWISE_TELEMETRY_ENABLED

/** Open a span: TELEM_SPAN_BEGIN(rec, track, "name", now[, {args}]). */
#define TELEM_SPAN_BEGIN(rec, track, name, now, ...) \
    do { \
        if (rec) \
            (rec)->begin((track), (name), (now), ##__VA_ARGS__); \
    } while (0)

/** Close the innermost span on a track. */
#define TELEM_SPAN_END(rec, track, now) \
    do { \
        if (rec) \
            (rec)->end((track), (now)); \
    } while (0)

/** Exclusive phase change (request lifecycle idiom). */
#define TELEM_TRANSITION(rec, track, name, now, ...) \
    do { \
        if (rec) \
            (rec)->transition((track), (name), (now), ##__VA_ARGS__); \
    } while (0)

/** Close whatever span a track has open. */
#define TELEM_CLOSE(rec, track, now) \
    do { \
        if (rec) \
            (rec)->close((track), (now)); \
    } while (0)

/** Zero-duration instant event. */
#define TELEM_INSTANT(rec, track, name, now, ...) \
    do { \
        if (rec) \
            (rec)->instant((track), (name), (now), ##__VA_ARGS__); \
    } while (0)

/** Move a request between SpanTracker attribution phases. */
#define TELEM_REQ_PHASE(spans, id, phase, now) \
    do { \
        if (spans) \
            (spans)->transition((id), (phase), (now)); \
    } while (0)

/** Fold a crash-restarted request's work into restart_penalty. */
#define TELEM_REQ_RESTART(spans, id, now) \
    do { \
        if (spans) \
            (spans)->restart((id), (now)); \
    } while (0)

/** Finish a request's timeline (slowdown ranks exemplars). */
#define TELEM_REQ_COMPLETE(spans, id, now, slowdown) \
    do { \
        if (spans) \
            (spans)->complete((id), (now), (slowdown)); \
    } while (0)

/** Source side of a cross-track flow arrow. */
#define TELEM_FLOW_START(rec, track, name, now, id) \
    do { \
        if (rec) \
            (rec)->flowStart((track), (name), (now), (id)); \
    } while (0)

/** Intermediate flow point. */
#define TELEM_FLOW_STEP(rec, track, name, now, id) \
    do { \
        if (rec) \
            (rec)->flowStep((track), (name), (now), (id)); \
    } while (0)

/** Destination side of a cross-track flow arrow. */
#define TELEM_FLOW_END(rec, track, name, now, id) \
    do { \
        if (rec) \
            (rec)->flowEnd((track), (name), (now), (id)); \
    } while (0)

#else  // SPLITWISE_TELEMETRY_ENABLED

#define TELEM_SPAN_BEGIN(rec, track, name, now, ...) \
    do { \
    } while (0)
#define TELEM_SPAN_END(rec, track, now) \
    do { \
    } while (0)
#define TELEM_TRANSITION(rec, track, name, now, ...) \
    do { \
    } while (0)
#define TELEM_CLOSE(rec, track, now) \
    do { \
    } while (0)
#define TELEM_INSTANT(rec, track, name, now, ...) \
    do { \
    } while (0)
#define TELEM_REQ_PHASE(spans, id, phase, now) \
    do { \
    } while (0)
#define TELEM_REQ_RESTART(spans, id, now) \
    do { \
    } while (0)
#define TELEM_REQ_COMPLETE(spans, id, now, slowdown) \
    do { \
    } while (0)
#define TELEM_FLOW_START(rec, track, name, now, id) \
    do { \
    } while (0)
#define TELEM_FLOW_STEP(rec, track, name, now, id) \
    do { \
    } while (0)
#define TELEM_FLOW_END(rec, track, name, now, id) \
    do { \
    } while (0)

#endif  // SPLITWISE_TELEMETRY_ENABLED

#endif  // SPLITWISE_TELEMETRY_TELEMETRY_H_
