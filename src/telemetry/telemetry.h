#ifndef SPLITWISE_TELEMETRY_TELEMETRY_H_
#define SPLITWISE_TELEMETRY_TELEMETRY_H_

/**
 * @file
 * Telemetry facade: configuration plus the TELEM_* instrumentation
 * macros used on simulation hot paths.
 *
 * Build-time switch: configuring with -DSPLITWISE_TELEMETRY=OFF
 * defines SPLITWISE_TELEMETRY_DISABLED, compiling every TELEM_*
 * macro to nothing - the event loop pays literally zero cost for
 * tracing hooks. With telemetry compiled in but no recorder attached
 * (the default at runtime), each macro costs one pointer test.
 */

#include "sim/time.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace_recorder.h"

#ifdef SPLITWISE_TELEMETRY_DISABLED
#define SPLITWISE_TELEMETRY_ENABLED 0
#else
#define SPLITWISE_TELEMETRY_ENABLED 1
#endif

namespace splitwise::telemetry {

/** Per-run telemetry switches, carried inside core::SimConfig. */
struct TelemetryConfig {
    /** Record request/machine lifecycle spans for Perfetto export. */
    bool traceEnabled = false;
    /**
     * Fixed time-series sampling interval; 0 disables the sampler.
     * Fault epochs additionally trigger on-event samples.
     */
    sim::TimeUs sampleIntervalUs = 0;
    /**
     * Emit per-machine gauge columns (queue depth, KV tokens,
     * residents, active tokens, power) in addition to the pool and
     * cluster aggregates.
     */
    bool perMachineSeries = true;

    /** True when any telemetry stream is requested. */
    bool
    any() const
    {
        return traceEnabled || sampleIntervalUs > 0;
    }
};

}  // namespace splitwise::telemetry

#if SPLITWISE_TELEMETRY_ENABLED

/** Open a span: TELEM_SPAN_BEGIN(rec, track, "name", now[, {args}]). */
#define TELEM_SPAN_BEGIN(rec, track, name, now, ...) \
    do { \
        if (rec) \
            (rec)->begin((track), (name), (now), ##__VA_ARGS__); \
    } while (0)

/** Close the innermost span on a track. */
#define TELEM_SPAN_END(rec, track, now) \
    do { \
        if (rec) \
            (rec)->end((track), (now)); \
    } while (0)

/** Exclusive phase change (request lifecycle idiom). */
#define TELEM_TRANSITION(rec, track, name, now, ...) \
    do { \
        if (rec) \
            (rec)->transition((track), (name), (now), ##__VA_ARGS__); \
    } while (0)

/** Close whatever span a track has open. */
#define TELEM_CLOSE(rec, track, now) \
    do { \
        if (rec) \
            (rec)->close((track), (now)); \
    } while (0)

/** Zero-duration instant event. */
#define TELEM_INSTANT(rec, track, name, now, ...) \
    do { \
        if (rec) \
            (rec)->instant((track), (name), (now), ##__VA_ARGS__); \
    } while (0)

#else  // SPLITWISE_TELEMETRY_ENABLED

#define TELEM_SPAN_BEGIN(rec, track, name, now, ...) \
    do { \
    } while (0)
#define TELEM_SPAN_END(rec, track, now) \
    do { \
    } while (0)
#define TELEM_TRANSITION(rec, track, name, now, ...) \
    do { \
    } while (0)
#define TELEM_CLOSE(rec, track, now) \
    do { \
    } while (0)
#define TELEM_INSTANT(rec, track, name, now, ...) \
    do { \
    } while (0)

#endif  // SPLITWISE_TELEMETRY_ENABLED

#endif  // SPLITWISE_TELEMETRY_TELEMETRY_H_
