#include "telemetry/timeseries.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/summary.h"
#include "sim/log.h"

namespace splitwise::telemetry {

namespace {

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

}  // namespace

int
TimeSeries::columnIndex(const std::string& name) const
{
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i] == name)
            return static_cast<int>(i);
    }
    return -1;
}

std::vector<double>
TimeSeries::column(const std::string& name) const
{
    const int idx = columnIndex(name);
    if (idx < 0)
        sim::fatal("TimeSeries: no column named '" + name + "'");
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto& row : rows)
        out.push_back(row[static_cast<std::size_t>(idx)]);
    return out;
}

std::string
TimeSeries::toCsv() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out << ',';
        out << columns[i];
    }
    out << '\n';
    for (const auto& row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << num(row[i]);
        }
        out << '\n';
    }
    return out.str();
}

std::string
TimeSeries::toJson(std::size_t histogram_buckets) const
{
    std::ostringstream out;
    out << "{\"columns\":[";
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out << ',';
        out << '"' << columns[i] << '"';
    }
    out << "],\"samples\":" << rows.size();

    // Per-column distribution summary, skipping the time axis.
    out << ",\"summary\":{";
    bool first = true;
    for (std::size_t c = 1; c < columns.size(); ++c) {
        metrics::Summary s;
        for (const auto& row : rows)
            s.add(row[c]);
        if (!first)
            out << ',';
        first = false;
        out << '"' << columns[c] << "\":{\"mean\":" << num(s.mean())
            << ",\"min\":" << num(s.min()) << ",\"max\":" << num(s.max())
            << ",\"p50\":" << num(s.p50()) << ",\"histogram\":[";
        const auto hist = s.histogram(histogram_buckets);
        for (std::size_t b = 0; b < hist.size(); ++b) {
            if (b)
                out << ',';
            out << "{\"le\":" << num(hist[b].upperEdge)
                << ",\"count\":" << hist[b].count << '}';
        }
        out << "]}";
    }
    out << '}';

    out << ",\"rows\":[";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r)
            out << ',';
        out << '[';
        for (std::size_t i = 0; i < rows[r].size(); ++i) {
            if (i)
                out << ',';
            out << num(rows[r][i]);
        }
        out << ']';
    }
    out << "]}";
    return out.str();
}

void
TimeSeries::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("TimeSeries::writeCsv: cannot open " + path);
    out << toCsv();
}

TimeSeriesSampler::TimeSeriesSampler(sim::Simulator& simulator,
                                     const MetricsRegistry& registry,
                                     sim::TimeUs interval_us)
    : simulator_(simulator), registry_(registry), interval_(interval_us)
{
    if (interval_ <= 0)
        sim::fatal("TimeSeriesSampler: interval must be positive");
}

void
TimeSeriesSampler::install()
{
    series_.columns.clear();
    series_.columns.push_back("t_s");
    for (const auto& name : registry_.names())
        series_.columns.push_back(name);
    simulator_.setTimeAdvanceHook(
        [this](sim::TimeUs next) { onAdvance(next); });
    emitRow(simulator_.now());
    nextSample_ = simulator_.now() + interval_;
}

void
TimeSeriesSampler::onAdvance(sim::TimeUs next)
{
    while (nextSample_ <= next) {
        emitRow(nextSample_);
        nextSample_ += interval_;
    }
}

void
TimeSeriesSampler::sampleNow()
{
    emitRow(simulator_.now());
}

void
TimeSeriesSampler::finish()
{
    emitRow(simulator_.now());
    simulator_.setTimeAdvanceHook(nullptr);
}

void
TimeSeriesSampler::emitRow(sim::TimeUs t)
{
    if (t == lastRowTs_)
        return;  // an on-event sample already landed on this instant
    lastRowTs_ = t;
    std::vector<double> row;
    row.reserve(registry_.size() + 1);
    row.push_back(sim::usToSeconds(t));
    for (double v : registry_.sampleValues())
        row.push_back(v);
    series_.rows.push_back(std::move(row));
}

}  // namespace splitwise::telemetry
