#include "telemetry/span_tracker.h"

#include <algorithm>
#include <cstdio>

#include "sim/log.h"

namespace splitwise::telemetry {

namespace {

double
usToMsF(sim::TimeUs us)
{
    return static_cast<double>(us) / 1000.0;
}

void
appendNum(std::string& out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

}  // namespace

const char*
spanPhaseName(SpanPhase phase)
{
    switch (phase) {
      case SpanPhase::kQueue: return "queue";
      case SpanPhase::kBrownoutStall: return "brownout_stall";
      case SpanPhase::kPrefill: return "prefill";
      case SpanPhase::kKvStall: return "kv_stall";
      case SpanPhase::kKvTransfer: return "kv_transfer";
      case SpanPhase::kKvBackoff: return "kv_backoff";
      case SpanPhase::kDecode: return "decode";
      case SpanPhase::kRestartPenalty: return "restart_penalty";
      case SpanPhase::kPrefixHit: return "prefix_hit";
    }
    return "?";
}

SpanTracker::SpanTracker(SpanTrackerConfig config) : config_(config)
{
    if (config_.exemplarK > 0)
        exemplars_.reserve(static_cast<std::size_t>(config_.exemplarK) + 1);
}

void
SpanTracker::setBrownoutLevel(int level)
{
    brownoutLevel_ = level;
}

SpanTracker::Slot&
SpanTracker::slotOf(std::uint64_t request_id)
{
    auto it = live_.find(request_id);
    if (it != live_.end())
        return slots_[it->second];
    std::size_t idx;
    if (!freeSlots_.empty()) {
        idx = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        idx = slots_.size();
        slots_.emplace_back();
    }
    live_.emplace(request_id, idx);
    Slot& slot = slots_[idx];
    slot.timeline.requestId = request_id;
    slot.timeline.restarts = 0;
    slot.timeline.doneUs = kSpanOpen;
    slot.timeline.segments.clear();  // capacity retained across reuse
    slot.incarnationStart = 0;
    return slot;
}

void
SpanTracker::closeOpenSegment(Slot& slot, sim::TimeUs now)
{
    auto& segments = slot.timeline.segments;
    if (!segments.empty() && segments.back().endUs == kSpanOpen)
        segments.back().endUs = now;
}

void
SpanTracker::transition(std::uint64_t request_id, SpanPhase phase,
                        sim::TimeUs now)
{
    // Degraded-mode queueing is its own phase so brownout penalties
    // don't masquerade as ordinary queue wait.
    if (phase == SpanPhase::kQueue && brownoutLevel_ > 0)
        phase = SpanPhase::kBrownoutStall;

    // Single hash probe: only a slot slotOf just created (or reused)
    // has no segments — transition and restart always leave one.
    Slot& slot = slotOf(request_id);
    if (slot.timeline.segments.empty()) {
        slot.timeline.arrivalUs = now;
        slot.incarnationStartUs = now;
    }
    auto& segments = slot.timeline.segments;
    if (!segments.empty() && segments.back().endUs == kSpanOpen) {
        if (segments.back().phase == phase)
            return;  // already in this phase
        segments.back().endUs = now;
    }
    segments.push_back({phase, now, kSpanOpen});
}

void
SpanTracker::restart(std::uint64_t request_id, sim::TimeUs now)
{
    auto it = live_.find(request_id);
    if (it == live_.end())
        sim::panic("SpanTracker::restart for untracked request");
    Slot& slot = slots_[it->second];
    auto& segments = slot.timeline.segments;
    closeOpenSegment(slot, now);
    // Everything since the last (re)start was lost work; collapse it
    // into one restart_penalty segment. Back-to-back crashes extend
    // the previous penalty instead of stacking zero-glued segments.
    segments.resize(slot.incarnationStart);
    if (!segments.empty() &&
        segments.back().phase == SpanPhase::kRestartPenalty &&
        segments.back().endUs == slot.incarnationStartUs) {
        segments.back().endUs = now;
    } else {
        segments.push_back({SpanPhase::kRestartPenalty,
                            slot.incarnationStartUs, now});
    }
    slot.incarnationStart = segments.size();
    slot.incarnationStartUs = now;
    ++slot.timeline.restarts;
}

void
SpanTracker::complete(std::uint64_t request_id, sim::TimeUs now,
                      double slowdown)
{
    auto it = live_.find(request_id);
    if (it == live_.end())
        sim::panic("SpanTracker::complete for untracked request");
    const std::size_t idx = it->second;
    Slot& slot = slots_[idx];
    closeOpenSegment(slot, now);
    slot.timeline.doneUs = now;

    double perPhaseMs[kSpanPhaseCount] = {};
    bool touched[kSpanPhaseCount] = {};
    double attributedMs = 0.0;
    for (const auto& seg : slot.timeline.segments) {
        const double ms = usToMsF(seg.endUs - seg.startUs);
        const int p = static_cast<int>(seg.phase);
        perPhaseMs[p] += ms;
        touched[p] = true;
        attributedMs += ms;
    }
    for (int p = 0; p < kSpanPhaseCount; ++p) {
        if (!touched[p])
            continue;
        phaseMs_[p].add(perPhaseMs[p]);
        phaseTotalMs_[p] += perPhaseMs[p];
    }
    e2eTotalMs_ += usToMsF(now - slot.timeline.arrivalUs);
    attributedTotalMs_ += attributedMs;
    ++completed_;

    if (config_.exemplarK > 0) {
        const auto k = static_cast<std::size_t>(config_.exemplarK);
        if (exemplars_.size() < k ||
            slowdown > exemplars_.back().slowdown) {
            // Insert sorted worst-first; ties keep completion order.
            auto pos = std::find_if(
                exemplars_.begin(), exemplars_.end(),
                [&](const SpanExemplar& e) { return e.slowdown < slowdown; });
            exemplars_.insert(pos, {slowdown, slot.timeline});
            if (exemplars_.size() > k)
                exemplars_.pop_back();
        }
    }

    if (config_.flightRecorderCapacity > 0) {
        if (ring_.size() < config_.flightRecorderCapacity) {
            ring_.push_back(slot.timeline);
        } else {
            // Copy-assign reuses the evicted entry's segment storage.
            ring_[ringNext_] = slot.timeline;
        }
        ringNext_ = (ringNext_ + 1) % config_.flightRecorderCapacity;
        ringCount_ = std::min(ringCount_ + 1,
                              config_.flightRecorderCapacity);
    }

    live_.erase(it);
    freeSlots_.push_back(idx);
}

const SpanTimeline*
SpanTracker::liveTimeline(std::uint64_t request_id) const
{
    auto it = live_.find(request_id);
    return it == live_.end() ? nullptr : &slots_[it->second].timeline;
}

const char*
SpanTracker::timelineDefect(const SpanTimeline& tl, std::uint64_t id)
{
    if (tl.requestId != id)
        return "slot holds a different request";
    if (tl.segments.empty())
        return "live timeline with no segments";
    if (tl.doneUs != kSpanOpen)
        return "live timeline already completed";
    if (tl.segments.front().startUs != tl.arrivalUs)
        return "first segment does not start at arrival";
    for (std::size_t i = 0; i < tl.segments.size(); ++i) {
        const auto& seg = tl.segments[i];
        const bool last = i + 1 == tl.segments.size();
        if (!last && seg.endUs == kSpanOpen)
            return "open segment is not the last";
        if (last && seg.endUs != kSpanOpen)
            return "live timeline has no open segment";
        if (seg.endUs != kSpanOpen && seg.endUs < seg.startUs)
            return "segment ends before it starts";
        if (!last && tl.segments[i + 1].startUs != seg.endUs)
            return "gap between segments";
    }
    return nullptr;
}

std::string
SpanTracker::integrityError() const
{
    // The DST checker calls this at every quiescent point, so the
    // happy path must stay allocation-free: scan first, and only
    // build the report string once a defect is known to exist.
    bool defective = false;
    for (const auto& [id, idx] : live_) {
        if (timelineDefect(slots_[idx].timeline, id)) {
            defective = true;
            break;
        }
    }
    if (!defective)
        return "";
    // Deterministic report regardless of hash-map order: the lowest
    // defective request id wins.
    std::uint64_t bad = 0;
    const char* reason = nullptr;
    for (const auto& [id, idx] : live_) {
        const char* r = timelineDefect(slots_[idx].timeline, id);
        if (r && (!reason || id < bad)) {
            bad = id;
            reason = r;
        }
    }
    return "request " + std::to_string(bad) + ": " + reason;
}

LatencyBreakdown
SpanTracker::breakdown() const
{
    LatencyBreakdown out;
    out.enabled = true;
    out.requests = completed_;
    out.e2eTotalMs = e2eTotalMs_;
    out.attributedTotalMs = attributedTotalMs_;
    out.phases.reserve(kSpanPhaseCount);
    for (int p = 0; p < kSpanPhaseCount; ++p) {
        PhaseStat stat;
        stat.phase = static_cast<SpanPhase>(p);
        stat.requests = phaseMs_[p].count();
        stat.totalMs = phaseTotalMs_[p];
        stat.meanMs = phaseMs_[p].mean();
        stat.p50Ms = phaseMs_[p].p50();
        stat.p99Ms = phaseMs_[p].p99();
        stat.maxMs = phaseMs_[p].max();
        out.phases.push_back(stat);
    }
    return out;
}

void
SpanTracker::appendTimelineJson(std::string& out,
                                const SpanTimeline& timeline)
{
    out += "{\"request\":";
    out += std::to_string(timeline.requestId);
    out += ",\"arrival_us\":";
    out += std::to_string(timeline.arrivalUs);
    out += ",\"done_us\":";
    out += std::to_string(timeline.doneUs);
    out += ",\"restarts\":";
    out += std::to_string(timeline.restarts);
    out += ",\"spans\":[";
    for (std::size_t i = 0; i < timeline.segments.size(); ++i) {
        const auto& seg = timeline.segments[i];
        if (i)
            out += ',';
        out += "{\"phase\":\"";
        out += spanPhaseName(seg.phase);
        out += "\",\"start_us\":";
        out += std::to_string(seg.startUs);
        out += ",\"end_us\":";
        out += std::to_string(seg.endUs);
        out += '}';
    }
    out += "]}";
}

std::string
SpanTracker::attributionJson() const
{
    const LatencyBreakdown bd = breakdown();
    std::string out;
    out += "{\"requests\":";
    out += std::to_string(bd.requests);
    out += ",\"e2e_total_ms\":";
    appendNum(out, bd.e2eTotalMs);
    out += ",\"attributed_total_ms\":";
    appendNum(out, bd.attributedTotalMs);
    out += ",\"phases\":{";
    for (std::size_t i = 0; i < bd.phases.size(); ++i) {
        const PhaseStat& ps = bd.phases[i];
        if (i)
            out += ',';
        out += '"';
        out += spanPhaseName(ps.phase);
        out += "\":{\"requests\":";
        out += std::to_string(ps.requests);
        out += ",\"total_ms\":";
        appendNum(out, ps.totalMs);
        out += ",\"mean\":";
        appendNum(out, ps.meanMs);
        out += ",\"p50\":";
        appendNum(out, ps.p50Ms);
        out += ",\"p99\":";
        appendNum(out, ps.p99Ms);
        out += ",\"max\":";
        appendNum(out, ps.maxMs);
        out += '}';
    }
    out += "},\"exemplars\":[";
    for (std::size_t i = 0; i < exemplars_.size(); ++i) {
        if (i)
            out += ',';
        out += "{\"slowdown\":";
        appendNum(out, exemplars_[i].slowdown);
        out += ",\"timeline\":";
        appendTimelineJson(out, exemplars_[i].timeline);
        out += '}';
    }
    out += "]}";
    return out;
}

std::string
SpanTracker::flightRecorderJson() const
{
    std::string out;
    out += "{\"recent\":[";
    // Oldest first: the ring's logical order starts at ringNext_ once
    // it has wrapped.
    const std::size_t cap = config_.flightRecorderCapacity;
    for (std::size_t i = 0; i < ringCount_; ++i) {
        const std::size_t idx =
            ringCount_ < cap ? i : (ringNext_ + i) % cap;
        if (i)
            out += ',';
        appendTimelineJson(out, ring_[idx]);
    }
    out += "],\"live\":[";
    std::vector<std::uint64_t> ids;
    ids.reserve(live_.size());
    for (const auto& [id, idx] : live_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i)
            out += ',';
        appendTimelineJson(out, slots_[live_.at(ids[i])].timeline);
    }
    out += "]}";
    return out;
}

}  // namespace splitwise::telemetry
