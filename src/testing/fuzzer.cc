#include "testing/fuzzer.h"

#include <algorithm>

#include "sim/rng.h"
#include "sim/run_pool.h"
#include "workload/multi_turn.h"
#include "workload/trace_gen.h"
#include "workload/workloads.h"

namespace splitwise::testing {

namespace {

/** Upper bound on fuzzed trace length: keeps one scenario cheap so
 *  soak campaigns get breadth (many scenarios) over depth. */
constexpr std::size_t kMaxRequests = 60;

}  // namespace

Scenario
makeScenario(std::uint64_t seed)
{
    sim::Rng rng(seed);
    Scenario s;
    s.seed = seed;
    s.name = "fuzz-" + std::to_string(seed);

    // Cluster design: any of the six families, small pools.
    const auto& kinds = provision::allDesignKinds();
    s.designKind =
        kinds[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(kinds.size()) - 1))];
    if (provision::isBaseline(s.designKind)) {
        s.numPrompt = static_cast<int>(rng.uniformInt(2, 4));
        s.numToken = 0;
    } else {
        s.numPrompt = static_cast<int>(rng.uniformInt(1, 3));
        s.numToken = static_cast<int>(rng.uniformInt(1, 3));
    }

    // Scheduler / MLS / transfer knobs.
    if (rng.bernoulli(0.25)) {
        s.routing = core::RoutingPolicy::kRandom;
        s.routingSeed =
            static_cast<std::uint64_t>(rng.uniformInt(1, 1'000'000'000));
    }
    if (rng.bernoulli(0.3))
        s.shedQueuedTokensBound = rng.uniformInt(6000, 30000);
    if (rng.bernoulli(0.3))
        s.promptChunkTokens = rng.bernoulli(0.5) ? 512 : 1024;
    s.kvCheckpointing = rng.bernoulli(0.3);
    s.usePiecewisePerfModel = rng.bernoulli(0.25);
    s.traceEnabled = rng.bernoulli(0.3);
    s.kvRetry.maxRetries = static_cast<int>(rng.uniformInt(0, 4));
    s.kvRetry.backoffBaseUs = rng.uniformInt(500, 4000);
    s.kvRetry.backoffMultiplier = rng.uniform(1.5, 3.0);
    // Generous timeouts: fault windows are finite, so every transfer
    // eventually succeeds and the scenario always drains.
    s.kvRetry.timeoutUs =
        rng.bernoulli(0.3) ? sim::msToUs(
                                 static_cast<double>(
                                     rng.uniformInt(100, 1000)))
                           : 0;

    // Workload: either service, load scaled to the small pools.
    const bool coding = rng.bernoulli(0.5);
    const double rps = coding ? rng.uniform(1.0, 6.0)
                              : rng.uniform(2.0, 10.0);
    const sim::TimeUs duration = sim::secondsToUs(rng.uniform(1.0, 2.5));
    workload::TraceGenerator gen(
        coding ? workload::coding() : workload::conversation(),
        static_cast<std::uint64_t>(rng.uniformInt(1, 1'000'000'000)));
    s.requests = gen.generate(rps, duration);
    if (s.requests.size() > kMaxRequests)
        s.requests.resize(kMaxRequests);

    // Fault storm over the trace window plus drain slack. Crashes
    // are sampled without replacement and capped below the machine
    // count so at least one machine survives any overlap.
    core::FaultStormConfig storm;
    storm.numMachines = s.machines();
    storm.horizonUs = duration + sim::secondsToUs(1.0);
    storm.crashes = static_cast<int>(
        rng.uniformInt(0, std::min<std::int64_t>(2, s.machines() - 1)));
    storm.minDowntimeUs = sim::msToUs(200.0);
    storm.maxDowntimeUs = sim::msToUs(1500.0);
    storm.slowdowns = static_cast<int>(rng.uniformInt(0, 2));
    storm.slowdownWindowUs = sim::msToUs(800.0);
    storm.linkFaults = static_cast<int>(rng.uniformInt(0, 3));
    storm.linkFaultWindowUs = sim::msToUs(200.0);
    storm.linkDegrades = static_cast<int>(rng.uniformInt(0, 2));
    storm.linkDegradeWindowUs = sim::msToUs(600.0);
    s.faults = core::makeFaultStorm(
        storm, static_cast<std::uint64_t>(rng.uniformInt(1, 1'000'000'000)));

    // Control plane last, so pre-autoscaler seeds keep drawing the
    // same scenario prefix. Sheddable priorities make brownout L1
    // observable; baselines ignore the flag.
    s.autoscale = rng.bernoulli(0.35);
    if (s.autoscale) {
        workload::assignPriorities(
            s.requests, rng.uniform(0.1, 0.5),
            static_cast<std::uint64_t>(rng.uniformInt(1, 1'000'000'000)));
    }

    // Prefix-cache sessions last, appended after every earlier draw
    // so pre-policy seeds keep composing byte-identical scenarios. A
    // quarter of seeds swap the trace for interleaved multi-turn chat
    // sessions under the prefix-cache policy, so shared-block
    // refcounts and hit accounting race the fault storm above
    // (crashes drop cached prefixes mid-session).
    if (rng.bernoulli(0.25)) {
        s.policy = sched::PolicyKind::kPrefixCache;
        workload::MultiTurnConfig mt = workload::defaultMultiTurnConfig();
        mt.maxTurns = static_cast<int>(rng.uniformInt(3, 6));
        // Seconds-scale horizons need sub-second think times, and a
        // small context cap reaches the truncation paths that the
        // production 16k cap never would in a few simulated seconds.
        mt.thinkTimeMeanS = rng.uniform(0.05, 0.3);
        mt.maxContextTokens = rng.bernoulli(0.5) ? 2048 : 4096;
        s.policyMaxContextTokens = mt.maxContextTokens;
        workload::MultiTurnTraceGenerator sessions(
            mt,
            static_cast<std::uint64_t>(rng.uniformInt(1, 1'000'000'000)));
        s.requests = sessions.generate(rng.uniform(1.0, 4.0), duration);
        // Tail truncation only drops late turns of open sessions -
        // their cached prefixes simply go unused, which is legal.
        if (s.requests.size() > kMaxRequests)
            s.requests.resize(kMaxRequests);
        if (s.autoscale) {
            workload::assignPriorities(
                s.requests, rng.uniform(0.1, 0.5),
                static_cast<std::uint64_t>(
                    rng.uniformInt(1, 1'000'000'000)));
        }
    }
    return s;
}

std::vector<FuzzResult>
fuzz(const FuzzerConfig& config)
{
    std::vector<std::uint64_t> seeds;
    seeds.reserve(static_cast<std::size_t>(config.scenarios));
    for (int i = 0; i < config.scenarios; ++i)
        seeds.push_back(config.baseSeed + static_cast<std::uint64_t>(i));

    sim::RunPool pool(config.jobs);
    return pool.map(seeds, [&config](std::uint64_t seed) {
        FuzzResult result;
        result.seed = seed;
        result.scenario = makeScenario(seed);
        result.scenario.spanOverride = config.spanOverride;
        // A quarter of seeds run through the streaming ingestion
        // path. Derived from the seed outside makeScenario so the
        // scenario's RNG draw order - and thus every existing pinned
        // seed - is untouched; both paths must be byte-identical
        // anyway, so which one a seed takes cannot matter.
        result.scenario.streamIngest = (seed % 4 == 0);
        result.outcome = runScenario(result.scenario, config.invariants);
        return result;
    });
}

}  // namespace splitwise::testing
