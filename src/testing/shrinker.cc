#include "testing/shrinker.h"

#include <algorithm>
#include <utility>

namespace splitwise::testing {

namespace {

/** Shared predicate state: the target invariant and the run budget. */
struct ShrinkState {
    std::string target;
    InvariantOptions invariants;
    int maxRuns = 0;
    int runs = 0;
    /** Violation time of the most recent failing run. */
    sim::TimeUs lastViolationTime = -1;

    /** True when @p s still violates the target invariant. */
    bool
    fails(const Scenario& s)
    {
        if (runs >= maxRuns)
            return false;
        ++runs;
        const ScenarioOutcome outcome = runScenario(s, invariants);
        if (outcome.violated && outcome.invariant == target) {
            lastViolationTime = outcome.violationTime;
            return true;
        }
        return false;
    }
};

/** Drop everything after the violation: requests that arrive, and
 *  faults that fire, past it cannot have contributed. */
bool
truncatePass(Scenario& best, ShrinkState& st)
{
    const sim::TimeUs t = st.lastViolationTime;
    if (t < 0)
        return false;
    Scenario cand = best;
    cand.requests.erase(
        std::remove_if(cand.requests.begin(), cand.requests.end(),
                       [t](const workload::Request& r) {
                           return r.arrival > t;
                       }),
        cand.requests.end());
    cand.faults.events.erase(
        std::remove_if(cand.faults.events.begin(), cand.faults.events.end(),
                       [t](const core::FaultEvent& f) { return f.at > t; }),
        cand.faults.events.end());
    const bool smaller = cand.requests.size() < best.requests.size() ||
                         cand.faults.size() < best.faults.size();
    if (smaller && st.fails(cand)) {
        best = std::move(cand);
        return true;
    }
    return false;
}

/**
 * ddmin-style chunked removal over a vector-valued field: try to
 * delete chunks at halving granularity, keeping every deletion that
 * still reproduces.
 */
template <typename Vec>
bool
ddminPass(Scenario& best, ShrinkState& st, Vec Scenario::* member)
{
    bool improved = false;
    std::size_t chunk = std::max<std::size_t>(1, (best.*member).size() / 2);
    while (true) {
        std::size_t start = 0;
        while (start < (best.*member).size()) {
            if (st.runs >= st.maxRuns)
                return improved;
            Scenario cand = best;
            auto& items = cand.*member;
            const std::size_t end =
                std::min(items.size(), start + chunk);
            items.erase(items.begin() + static_cast<std::ptrdiff_t>(start),
                        items.begin() + static_cast<std::ptrdiff_t>(end));
            if (st.fails(cand)) {
                best = std::move(cand);
                improved = true;
                // Retry the same offset: the next chunk slid here.
            } else {
                start += chunk;
            }
        }
        if (chunk == 1)
            break;
        chunk = std::max<std::size_t>(1, chunk / 2);
    }
    return improved;
}

/** Wrapper so ddminPass can treat the fault list like a field. */
bool
ddminFaults(Scenario& best, ShrinkState& st)
{
    bool improved = false;
    std::size_t chunk = std::max<std::size_t>(1, best.faults.size() / 2);
    while (true) {
        std::size_t start = 0;
        while (start < best.faults.size()) {
            if (st.runs >= st.maxRuns)
                return improved;
            Scenario cand = best;
            auto& events = cand.faults.events;
            const std::size_t end =
                std::min(events.size(), start + chunk);
            events.erase(
                events.begin() + static_cast<std::ptrdiff_t>(start),
                events.begin() + static_cast<std::ptrdiff_t>(end));
            if (st.fails(cand)) {
                best = std::move(cand);
                improved = true;
            } else {
                start += chunk;
            }
        }
        if (chunk == 1)
            break;
        chunk = std::max<std::size_t>(1, chunk / 2);
    }
    return improved;
}

/** Largest machine id the scenario's faults or seeded bug pin. */
int
maxPinnedMachineId(const Scenario& s)
{
    int max_id = -1;
    for (const auto& f : s.faults.events)
        max_id = std::max(max_id, f.machineId);
    if (s.bug.kind == BugKind::kOrphanKvBlock)
        max_id = std::max(max_id, s.bug.machineId);
    return max_id;
}

/**
 * Shrink the pools. Machine ids are positional (prompt pool first),
 * so only reductions that keep every pinned id valid are attempted:
 * dropping the last token machine is safe while nothing references
 * it; dropping a prompt machine shifts all token ids and is only
 * tried when nothing is pinned at all.
 */
bool
poolPass(Scenario& best, ShrinkState& st)
{
    bool improved = false;
    while (best.numToken > 1 &&
           maxPinnedMachineId(best) < best.machines() - 1) {
        if (st.runs >= st.maxRuns)
            return improved;
        Scenario cand = best;
        --cand.numToken;
        if (!st.fails(cand))
            break;
        best = std::move(cand);
        improved = true;
    }
    while (best.numPrompt > 1 && maxPinnedMachineId(best) < 0) {
        if (st.runs >= st.maxRuns)
            return improved;
        Scenario cand = best;
        --cand.numPrompt;
        if (!st.fails(cand))
            break;
        best = std::move(cand);
        improved = true;
    }
    return improved;
}

}  // namespace

ShrinkResult
shrink(const Scenario& failing, const ShrinkOptions& options)
{
    ShrinkResult result;
    result.minimal = failing;
    result.originalRequests = failing.requests.size();
    result.originalFaults = failing.faults.size();

    ShrinkState st;
    st.invariants = options.invariants;
    st.maxRuns = options.maxRuns;

    ++st.runs;
    const ScenarioOutcome first = runScenario(failing, options.invariants);
    if (!first.violated) {
        result.runs = st.runs;
        return result;
    }
    result.reproduced = true;
    result.invariant = first.invariant;
    st.target = first.invariant;
    st.lastViolationTime = first.violationTime;

    Scenario best = failing;
    bool improved = true;
    while (improved && st.runs < st.maxRuns) {
        improved = false;
        improved |= truncatePass(best, st);
        improved |= ddminPass(best, st, &Scenario::requests);
        improved |= ddminFaults(best, st);
        improved |= poolPass(best, st);
    }

    best.name = failing.name + "-min";
    result.minimal = std::move(best);
    result.runs = st.runs;
    return result;
}

}  // namespace splitwise::testing
