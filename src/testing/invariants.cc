#include "testing/invariants.h"

#include <string>

#include "telemetry/telemetry.h"

namespace splitwise::testing {

namespace {

/**
 * Forward-progress rank of a phase. Regressions (decode back to
 * queued, for example) are legal only alongside a restart-epoch or
 * preemption-counter bump; anything else is a stale event firing.
 */
int
phaseRank(engine::RequestPhase phase)
{
    switch (phase) {
      case engine::RequestPhase::kPromptQueued: return 0;
      case engine::RequestPhase::kPromptRunning: return 1;
      case engine::RequestPhase::kTransferring: return 2;
      case engine::RequestPhase::kDecoding: return 3;
      case engine::RequestPhase::kDone: return 4;
      case engine::RequestPhase::kRejected: return 4;
    }
    return -1;
}

std::string
requestTag(const engine::LiveRequest& req)
{
    return "request " + std::to_string(req.spec.id) + " (" +
           engine::requestPhaseName(req.phase) + ", prompt_m=" +
           std::to_string(req.promptMachine) + ", token_m=" +
           std::to_string(req.tokenMachine) + ")";
}

}  // namespace

InvariantViolation::InvariantViolation(std::string invariant, sim::TimeUs at,
                                       std::string detail)
    : std::runtime_error("invariant '" + invariant + "' violated at t=" +
                         std::to_string(at) + "us: " + detail),
      invariant_(std::move(invariant)), at_(at), detail_(std::move(detail))
{
}

InvariantChecker::InvariantChecker(core::Cluster& cluster,
                                   InvariantOptions options)
    : cluster_(cluster), options_(options)
{
    hook_ = cluster_.simulator().addTimeAdvanceHook(
        [this](sim::TimeUs next) { onAdvance(next); });
}

InvariantChecker::~InvariantChecker()
{
    cluster_.simulator().removeTimeAdvanceHook(hook_);
}

void
InvariantChecker::violate(const char* invariant,
                          const std::string& detail) const
{
    throw InvariantViolation(invariant, cluster_.simulator().now(), detail);
}

void
InvariantChecker::onAdvance(sim::TimeUs next)
{
    // Event timestamps must be monotone: the clock only moves
    // forward, and never behind the previous advance.
    if (next < cluster_.simulator().now()) {
        violate("time-monotone",
                "clock would move backwards: next=" + std::to_string(next) +
                    " now=" + std::to_string(cluster_.simulator().now()));
    }
    if (lastAdvance_ >= 0 && next < lastAdvance_) {
        violate("time-monotone",
                "advance to " + std::to_string(next) +
                    " behind previous advance " +
                    std::to_string(lastAdvance_));
    }
    lastAdvance_ = next;

    ++advances_;
    if (options_.checkEveryNthAdvance > 1 &&
        advances_ % static_cast<std::uint64_t>(
                        options_.checkEveryNthAdvance) != 0) {
        return;
    }
    checkNow();
}

void
InvariantChecker::refreshIndex()
{
    const auto& pool = cluster_.requestPool();
    if (poolVersion_ == pool.version())
        return;
    poolVersion_ = pool.version();
    byId_.clear();
    byId_.reserve(pool.liveCount());
    pool.forEachLive([&](const engine::LiveRequest& req) {
        if (!byId_.emplace(req.spec.id, &req).second) {
            violate("request-conservation",
                    "duplicate request id " + std::to_string(req.spec.id) +
                        " in the live set");
        }
    });
    // Snapshots of retired requests can never be observed again;
    // prune them so the checker's memory stays O(in-flight) too.
    for (auto it = lastSeen_.begin(); it != lastSeen_.end();) {
        if (byId_.count(it->first) == 0)
            it = lastSeen_.erase(it);
        else
            ++it;
    }
}

void
InvariantChecker::checkNow()
{
    refreshIndex();
    checkRequests();
    checkMachines();
    if (controller_)
        checkController();
    checkTransfers();
    checkTelemetry();
    checkSpanTimelines();
    checkEventQueue();
    ++checksRun_;
}

void
InvariantChecker::checkRequests()
{
    const sim::TimeUs now = cluster_.simulator().now();
    const auto& pool = cluster_.requestPool();
    std::size_t liveSeen = 0;
    std::size_t decoding = 0;

    pool.forEachLive([&](const engine::LiveRequest& req) {
        ++liveSeen;

        // Slots are acquired by the arrival event itself, so a live
        // slot for a request from the future means the stream path
        // admitted it early.
        if (req.spec.arrival > now) {
            violate("request-conservation",
                    requestTag(req) + " holds a live slot before its "
                        "arrival at " + std::to_string(req.spec.arrival));
        }

        switch (req.phase) {
          case engine::RequestPhase::kDone:
          case engine::RequestPhase::kRejected:
            // Terminal slots release inside the completion callback,
            // before the next quiescent point; one still live here is
            // a leaked slot - exactly the O(in-flight) bug class the
            // pool exists to prevent.
            violate("live-set-bound",
                    requestTag(req) +
                        " is terminal but still holds a pool slot");
          case engine::RequestPhase::kTransferring:
            if (req.promptMachine < 0 || req.tokenMachine < 0) {
                violate("request-conservation",
                        requestTag(req) + " transferring while unrouted");
            }
            break;
          case engine::RequestPhase::kDecoding: {
            ++decoding;
            if (req.tokenMachine < 0) {
                violate("request-conservation",
                        requestTag(req) + " decoding while unrouted");
            }
            const auto& mls =
                cluster_.machines()[static_cast<std::size_t>(
                                        req.tokenMachine)]
                    ->mls();
            if (!mls.resident(&req) || !mls.blocks().holds(req.spec.id)) {
                violate("kv-accounting",
                        requestTag(req) +
                            " decoding but not resident (or without KV) on "
                            "its token machine");
            }
            break;
          }
          case engine::RequestPhase::kPromptQueued:
          case engine::RequestPhase::kPromptRunning:
            break;
        }

        if (!req.terminal() && req.generated >= req.spec.outputTokens) {
            violate("request-conservation",
                    requestTag(req) + " overran its output budget: " +
                        std::to_string(req.generated) + "/" +
                        std::to_string(req.spec.outputTokens));
        }

        // Stale-event detection: compare against the last snapshot.
        // Within one restart epoch (and absent preemptions) progress
        // is monotone and terminal states are frozen.
        auto& snap = lastSeen_[req.spec.id];
        if (req.restartEpoch < snap.epoch) {
            violate("stale-event",
                    requestTag(req) + " restart epoch moved backwards");
        }
        const bool same_epoch = req.restartEpoch == snap.epoch &&
                                req.restarts == snap.restarts &&
                                req.preemptions == snap.preemptions;
        if (same_epoch) {
            if (phaseRank(req.phase) < phaseRank(snap.phase)) {
                violate("stale-event",
                        requestTag(req) + " phase regressed from " +
                            engine::requestPhaseName(snap.phase) +
                            " without a restart or preemption");
            }
            if (req.generated < snap.generated) {
                violate("stale-event",
                        requestTag(req) + " generated-token count fell " +
                            std::to_string(snap.generated) + " -> " +
                            std::to_string(req.generated));
            }
        }
        if (snap.phase == engine::RequestPhase::kDone &&
            (req.phase != engine::RequestPhase::kDone ||
             req.generated != snap.generated ||
             req.doneTime != snap.doneTime)) {
            violate("stale-event",
                    requestTag(req) + " mutated after completion");
        }
        if (snap.phase == engine::RequestPhase::kRejected &&
            req.phase != engine::RequestPhase::kRejected) {
            violate("stale-event", requestTag(req) + " revived after shed");
        }
        snap = Snapshot{req.phase,     req.generated,   req.restartEpoch,
                        req.restarts,  req.preemptions, req.doneTime};
    });

    // Pool accounting must be internally consistent: the live column
    // walk, the counter, and the acquire/release totals agree.
    if (liveSeen != pool.liveCount()) {
        violate("live-set-bound",
                "pool counts " + std::to_string(pool.liveCount()) +
                    " live slots but the live column holds " +
                    std::to_string(liveSeen));
    }

    // The declared in-flight budget (SimConfig::maxLiveRequests)
    // bounds the live set at every quiescent point - the memory
    // contract of the streaming path.
    const std::size_t budget = cluster_.config().maxLiveRequests;
    if (budget > 0 && pool.liveCount() > budget) {
        violate("live-set-bound",
                std::to_string(pool.liveCount()) +
                    " in-flight request slots exceed the configured "
                    "budget of " + std::to_string(budget));
    }

    // Conservation cross-checks: every acquired slot is either still
    // live, folded into a completion record, or counted rejected -
    // a lost or double-counted request breaks the ledger.
    const std::uint64_t completed = cluster_.results().completed();
    const std::uint64_t rejected =
        cluster_.metrics().counterValue("rejected");
    if (pool.acquiredTotal() != pool.liveCount() + completed + rejected) {
        violate("request-conservation",
                std::to_string(pool.acquiredTotal()) + " slots acquired != " +
                    std::to_string(pool.liveCount()) + " live + " +
                    std::to_string(completed) + " completed + " +
                    std::to_string(rejected) + " rejected");
    }
    if (rejected != cluster_.scheduler().shedRequests()) {
        violate("request-conservation",
                "registry counter 'rejected' = " + std::to_string(rejected) +
                    " but CLS shed " +
                    std::to_string(cluster_.scheduler().shedRequests()));
    }

    // Every machine resident must be a live decoding request; a
    // stale resident (finished but never removed) breaks this sum.
    std::size_t residents = 0;
    for (const auto& m : cluster_.machines())
        residents += m->mls().residentCount();
    if (residents > decoding) {
        violate("kv-accounting",
                std::to_string(residents) + " residents across machines but "
                    "only " +
                    std::to_string(decoding) + " requests decoding");
    }
}

void
InvariantChecker::checkMachines()
{
    const auto& machines = cluster_.machines();
    const auto& cls = cluster_.scheduler();
    std::size_t alive = 0;

    for (std::size_t i = 0; i < machines.size(); ++i) {
        const engine::Machine& m = *machines[i];
        if (m.id() != static_cast<int>(i)) {
            violate("machine-pool",
                    "machine index " + std::to_string(i) + " holds id " +
                        std::to_string(m.id()));
        }

        // Pool-membership conservation: every machine sits in exactly
        // one of {routed, controller standby, failed} - a machine
        // lost (or duplicated) across a role flex breaks this.
        const int states = (cls.contains(m.id()) ? 1 : 0) +
                           (cls.inStandby(m.id()) ? 1 : 0) +
                           (m.failed() ? 1 : 0);
        if (states != 1) {
            violate("machine-pool",
                    "machine " + std::to_string(m.id()) + " is in " +
                        std::to_string(states) +
                        " of {routed, standby, failed}");
        }
        if (cls.contains(m.id()))
            ++alive;

        if (m.failed()) {
            // A failed machine dropped all of its state.
            if (m.busy() || m.mls().pendingPrompts() != 0 ||
                m.mls().residentCount() != 0 ||
                m.mls().blocks().residents() != 0 ||
                m.mls().blocks().usedTokens() != 0) {
                violate("machine-pool",
                        "failed machine " + std::to_string(m.id()) +
                            " still holds work or KV");
            }
        }

        // A parked machine was drained first and sits in standby.
        if (m.parked()) {
            if (!cls.inStandby(m.id())) {
                violate("machine-pool",
                        "machine " + std::to_string(m.id()) +
                            " parked outside controller standby");
            }
            if (m.busy() || m.mls().hasWork() ||
                m.mls().blocks().residents() != 0) {
                violate("machine-pool",
                        "parked machine " + std::to_string(m.id()) +
                            " still holds work or KV");
            }
        }

        // The paged allocator's internal accounting must balance:
        // a leak or double-free shows up as an aggregate mismatch.
        const std::string audit = m.mls().blocks().audit();
        if (!audit.empty()) {
            violate("kv-accounting",
                    "machine " + std::to_string(m.id()) + ": " + audit);
        }

        // Every held allocation belongs to a live, non-terminal
        // request that is actually placed on this machine. An
        // unknown id (or a done request's id) is a leaked block -
        // the double-release/missing-release class of bug.
        for (const std::uint64_t id : m.mls().blocks().heldRequestIds()) {
            const auto it = byId_.find(id);
            if (it == byId_.end()) {
                violate("kv-orphan",
                        "machine " + std::to_string(m.id()) +
                            " holds KV for unknown request id " +
                            std::to_string(id));
            }
            const engine::LiveRequest& req = *it->second;
            if (req.terminal()) {
                violate("kv-orphan",
                        "machine " + std::to_string(m.id()) +
                            " holds KV for terminal " + requestTag(req));
            }
            if (req.promptMachine != m.id() && req.tokenMachine != m.id()) {
                violate("kv-orphan",
                        "machine " + std::to_string(m.id()) +
                            " holds KV for " + requestTag(req) +
                            " which is not placed on it");
            }
        }

        // Shared-prefix pins must balance against live requests:
        // every pin belongs to a live, non-terminal request of that
        // session, placed on this machine, whose prefix tag matches
        // the pin's acquire-time size. (The per-entry refcount ==
        // pin-count sum is already enforced by blocks().audit().)
        for (const engine::PrefixReference& ref :
             m.mls().blocks().prefixReferences()) {
            const auto it = byId_.find(ref.requestId);
            if (it == byId_.end()) {
                violate("prefix-refcount",
                        "machine " + std::to_string(m.id()) +
                            " holds a prefix pin for unknown request id " +
                            std::to_string(ref.requestId));
            }
            const engine::LiveRequest& req = *it->second;
            if (req.terminal()) {
                violate("prefix-refcount",
                        "machine " + std::to_string(m.id()) +
                            " holds a prefix pin for terminal " +
                            requestTag(req));
            }
            if (req.spec.session != ref.key) {
                violate("prefix-refcount",
                        requestTag(req) + " pins prefix of session " +
                            std::to_string(ref.key) + " but belongs to " +
                            std::to_string(req.spec.session));
            }
            if (req.cachedPrefixTokens != ref.tokens) {
                violate("prefix-refcount",
                        requestTag(req) + " pin holds " +
                            std::to_string(ref.tokens) +
                            " tokens but the request's prefix tag says " +
                            std::to_string(req.cachedPrefixTokens));
            }
            if (req.promptMachine != m.id() && req.tokenMachine != m.id()) {
                violate("prefix-refcount",
                        "machine " + std::to_string(m.id()) +
                            " holds a prefix pin for " + requestTag(req) +
                            " which is not placed on it");
            }
        }
    }

    if (cls.liveMachines() != alive) {
        violate("machine-pool",
                "scheduler tracks " + std::to_string(cls.liveMachines()) +
                    " live machines, cluster routes " +
                    std::to_string(alive));
    }
    const std::size_t pooled = cls.poolSize(core::PoolType::kPrompt) +
                               cls.poolSize(core::PoolType::kToken) +
                               cls.poolSize(core::PoolType::kMixed);
    if (pooled != alive) {
        violate("machine-pool",
                "pool sizes sum to " + std::to_string(pooled) + " but " +
                    std::to_string(alive) + " machines are routed");
    }
}

void
InvariantChecker::checkController()
{
    const auto& actions = controller_->actions();
    const auto& cfg = controller_->config();
    for (; actionCursor_ < actions.size(); ++actionCursor_) {
        const control::ControlAction& a = actions[actionCursor_];
        switch (a.type) {
          case control::ActionType::kScaleUpStart:
          case control::ActionType::kScaleDownStart:
          case control::ActionType::kFlexStart: {
            // No oscillation faster than the cooldown: successive
            // scale initiations on one pool must be spaced out. A
            // flex touches both pools and cools both.
            const bool both = a.type == control::ActionType::kFlexStart;
            const bool prompt = both || a.pool == core::PoolType::kPrompt;
            const bool token = both || a.pool == core::PoolType::kToken;
            if (prompt) {
                if (lastInitPrompt_ >= 0 &&
                    a.at - lastInitPrompt_ < cfg.scaleCooldownUs) {
                    violate("scale-cooldown",
                            "prompt-pool scale actions " +
                                std::to_string(a.at - lastInitPrompt_) +
                                "us apart (cooldown " +
                                std::to_string(cfg.scaleCooldownUs) + "us)");
                }
                lastInitPrompt_ = a.at;
            }
            if (token) {
                if (lastInitToken_ >= 0 &&
                    a.at - lastInitToken_ < cfg.scaleCooldownUs) {
                    violate("scale-cooldown",
                            "token-pool scale actions " +
                                std::to_string(a.at - lastInitToken_) +
                                "us apart (cooldown " +
                                std::to_string(cfg.scaleCooldownUs) + "us)");
                }
                lastInitToken_ = a.at;
            }
            break;
          }
          case control::ActionType::kBrownout: {
            if (a.brownoutLevel < 0 || a.brownoutLevel > 3) {
                violate("brownout-monotone",
                        "brownout level " +
                            std::to_string(a.brownoutLevel) +
                            " outside the ladder");
            }
            const int delta = a.brownoutLevel - lastBrownoutLevel_;
            if (delta != 1 && delta != -1) {
                violate("brownout-monotone",
                        "brownout jumped " +
                            std::to_string(lastBrownoutLevel_) + " -> " +
                            std::to_string(a.brownoutLevel));
            }
            if (lastBrownoutAt_ >= 0 &&
                a.at - lastBrownoutAt_ < cfg.brownoutCooldownUs) {
                violate("brownout-monotone",
                        "brownout moves " +
                            std::to_string(a.at - lastBrownoutAt_) +
                            "us apart (cooldown " +
                            std::to_string(cfg.brownoutCooldownUs) + "us)");
            }
            lastBrownoutLevel_ = a.brownoutLevel;
            lastBrownoutAt_ = a.at;
            break;
          }
          default:
            break;
        }
    }
    // The ladder and the scheduler may not drift apart.
    if (cluster_.scheduler().brownoutLevel() != lastBrownoutLevel_) {
        violate("brownout-monotone",
                "scheduler at level " +
                    std::to_string(cluster_.scheduler().brownoutLevel()) +
                    " but the controller last set " +
                    std::to_string(lastBrownoutLevel_));
    }
}

void
InvariantChecker::checkTransfers()
{
    const auto& s = cluster_.transferEngine().stats();
    const auto& prev = lastTransferStats_;
    const bool monotone = s.transfers >= prev.transfers &&
                          s.layerwiseTransfers >= prev.layerwiseTransfers &&
                          s.bytesMoved >= prev.bytesMoved &&
                          s.memoryStalls >= prev.memoryStalls &&
                          s.transferFaults >= prev.transferFaults &&
                          s.transferTimeouts >= prev.transferTimeouts &&
                          s.transferRetries >= prev.transferRetries &&
                          s.transferAborts >= prev.transferAborts &&
                          s.degradedTransfers >= prev.degradedTransfers;
    if (!monotone) {
        violate("transfer-accounting",
                "a cumulative transfer counter decreased");
    }
    lastTransferStats_ = s;
}

void
InvariantChecker::checkEventQueue()
{
    // Structural self-check of the indexed heap: heap property,
    // record<->position back-pointers, and free-list accounting. A
    // corrupt queue would reorder events and break determinism long
    // before it crashed, so DST probes it at every quiescent point.
    const std::string err =
        cluster_.simulator().eventQueue().integrityError();
    if (!err.empty())
        violate("event-queue", err);
}

void
InvariantChecker::checkTelemetry()
{
#if !SPLITWISE_TELEMETRY_ENABLED
    // The TELEM_* macros compile to no-ops: no span ever opens, so
    // balance against live state is meaningless here.
    return;
#else
    const telemetry::TraceRecorder* rec = cluster_.traceRecorder();
    if (!rec)
        return;
    // Span balance: one open span per busy machine (its iteration)
    // plus one per routed, non-terminal request (its lifecycle
    // track). Anything else means a begin/end pair went missing.
    std::size_t expected = 0;
    for (const auto& m : cluster_.machines()) {
        if (m->busy() && !m->failed())
            ++expected;
    }
    cluster_.requestPool().forEachLive([&](const engine::LiveRequest& req) {
        if (!req.terminal() && req.promptMachine >= 0)
            ++expected;
    });
    if (rec->openSpans() != expected) {
        violate("span-balance",
                std::to_string(rec->openSpans()) + " open spans, expected " +
                    std::to_string(expected));
    }
#endif
}

void
InvariantChecker::checkSpanTimelines()
{
#if SPLITWISE_TELEMETRY_ENABLED
    const telemetry::SpanTracker* spans = cluster_.spanTracker();
    if (!spans)
        return;
    // The sweep below is O(live timelines x segments); span defects
    // are persistent (append-only segments), so sampling every Nth
    // check loses only latency, not coverage. finalCheck re-sweeps.
    if (options_.spanCheckEveryNth > 1 &&
        (spanCheckTick_++ % static_cast<std::uint64_t>(
                                options_.spanCheckEveryNth)) != 0) {
        return;
    }
    // Timeline balance: exactly one live timeline per routed,
    // non-terminal request - the tracker may neither leak completed
    // timelines nor lose live ones.
    std::size_t routed = 0;
    cluster_.requestPool().forEachLive([&](const engine::LiveRequest& req) {
        if (!req.terminal() && req.promptMachine >= 0)
            ++routed;
    });
    if (spans->liveCount() != routed) {
        violate("span-balance",
                std::to_string(spans->liveCount()) +
                    " live request timelines, expected " +
                    std::to_string(routed) + " routed non-terminal requests");
    }
    // Structural self-check: contiguous from arrival, exactly one
    // open segment, end >= start everywhere.
    const std::string err = spans->integrityError();
    if (!err.empty())
        violate("span-balance", err);
#endif
}

void
InvariantChecker::finalCheck(const core::RunReport& report)
{
    refreshIndex();

    const auto& pool = cluster_.requestPool();
    if (pool.liveCount() != 0) {
        std::string first;
        pool.forEachLive([&](const engine::LiveRequest& req) {
            if (first.empty())
                first = requestTag(req);
        });
        violate("liveness",
                std::to_string(pool.liveCount()) +
                    " requests still hold pool slots after the run "
                    "drained (first: " + first + ")");
    }
    // Retired slots are recycled, so the final balance runs on the
    // counter ledger: every acquired slot must have retired as either
    // a completion (latency record) or a rejection (counter).
    const std::uint64_t done = cluster_.results().completed();
    const std::uint64_t rejected = cluster_.metrics().counterValue("rejected");
    if (done + rejected != report.submitted ||
        report.submitted != pool.acquiredTotal()) {
        violate("request-conservation",
                "submitted " + std::to_string(report.submitted) +
                    " != done " + std::to_string(done) + " + rejected " +
                    std::to_string(rejected) + " (pool acquired " +
                    std::to_string(pool.acquiredTotal()) + ")");
    }
    if (report.requests.completed() != done) {
        violate("request-conservation",
                "report says " + std::to_string(report.requests.completed()) +
                    " completed, results ledger says " + std::to_string(done));
    }
    if (report.rejected != rejected) {
        violate("request-conservation",
                "report says " + std::to_string(report.rejected) +
                    " rejected, counter ledger says " +
                    std::to_string(rejected));
    }
    if (report.rejoins != cluster_.scheduler().rejoins()) {
        violate("machine-pool", "report/scheduler rejoin counts disagree");
    }

    for (const auto& m : cluster_.machines()) {
        if (m->busy() && !m->failed()) {
            violate("liveness", "machine " + std::to_string(m->id()) +
                                    " still busy after the run drained");
        }
        if (m->mls().blocks().residents() != 0) {
            const auto held = m->mls().blocks().heldRequestIds();
            violate("kv-orphan",
                    "machine " + std::to_string(m->id()) + " ends the run "
                        "holding " +
                        std::to_string(held.size()) +
                        " KV allocations (first id " +
                        std::to_string(held.empty() ? 0 : held.front()) +
                        ")");
        }
        const std::string audit = m->mls().blocks().audit();
        if (!audit.empty()) {
            violate("kv-accounting",
                    "machine " + std::to_string(m->id()) + ": " + audit);
        }
        // Every session is over once the run drains, so no shared
        // prefix may still be pinned: surviving cache entries must
        // all be reclaimable (refcount zero).
        if (!m->mls().blocks().prefixReferences().empty()) {
            violate("prefix-refcount",
                    "machine " + std::to_string(m->id()) +
                        " ends the run with " +
                        std::to_string(
                            m->mls().blocks().prefixReferences().size()) +
                        " live prefix pins");
        }
    }

    const auto& engine = cluster_.transferEngine();
    if (engine.inFlightTransfers() != 0 || engine.waitingTransfers() != 0) {
        violate("transfer-accounting",
                std::to_string(engine.inFlightTransfers()) + " in-flight / " +
                    std::to_string(engine.waitingTransfers()) +
                    " waiting transfers after the run drained");
    }

#if SPLITWISE_TELEMETRY_ENABLED
    if (const auto* rec = cluster_.traceRecorder()) {
        if (rec->openSpans() != 0) {
            violate("span-balance",
                    std::to_string(rec->openSpans()) +
                        " spans still open after the run");
        }
    }
    if (const auto* spans = cluster_.spanTracker()) {
        if (spans->liveCount() != 0) {
            violate("span-balance",
                    std::to_string(spans->liveCount()) +
                        " request timelines still open after the run "
                        "drained");
        }
        // Full structural sweep: the per-check sweep samples at
        // spanCheckEveryNth, so re-verify everything still live here.
        const std::string err = spans->integrityError();
        if (!err.empty())
            violate("span-balance", err);
        if (spans->completedCount() != done) {
            violate("span-balance",
                    "tracker folded " +
                        std::to_string(spans->completedCount()) +
                        " completed timelines, live state says " +
                        std::to_string(done) + " requests finished");
        }
    }
#endif
}

}  // namespace splitwise::testing
