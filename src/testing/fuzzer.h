#ifndef SPLITWISE_TESTING_FUZZER_H_
#define SPLITWISE_TESTING_FUZZER_H_

/**
 * @file
 * Seeded scenario fuzzing: compose randomized-but-deterministic
 * scenarios (workload mix, cluster design, fault storms, KV-retry
 * configs, admission control, mid-run crash/rejoin perturbations)
 * and run them through sim::RunPool with invariants armed.
 *
 * makeScenario(seed) is a pure function of the seed: the same seed
 * always composes the same scenario, and a scenario replays
 * byte-identically regardless of the fuzzer's job count - the same
 * contract the parallel sweep engine guarantees.
 */

#include <cstdint>
#include <vector>

#include "testing/scenario.h"

namespace splitwise::testing {

/** Fuzzing campaign knobs. */
struct FuzzerConfig {
    /** Scenarios to compose and run. */
    int scenarios = 100;
    /** Seed of scenario i is baseSeed + i. */
    std::uint64_t baseSeed = 1;
    /** RunPool worker count (0 = hardware default, 1 = serial). */
    int jobs = 1;
    /** Span-tracking override stamped on every composed scenario
     *  (Scenario::spanOverride: 0 auto, 1 force on, -1 force off). */
    int spanOverride = 0;
    InvariantOptions invariants;
};

/** One fuzzed run: the seed, the scenario, and what happened. */
struct FuzzResult {
    std::uint64_t seed = 0;
    Scenario scenario;
    ScenarioOutcome outcome;
};

/** Compose the scenario for one seed (deterministic). */
Scenario makeScenario(std::uint64_t seed);

/**
 * Run the campaign; results are ordered by seed regardless of job
 * count. Violations are reported in the results, never thrown.
 */
std::vector<FuzzResult> fuzz(const FuzzerConfig& config);

}  // namespace splitwise::testing

#endif  // SPLITWISE_TESTING_FUZZER_H_
