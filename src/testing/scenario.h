#ifndef SPLITWISE_TESTING_SCENARIO_H_
#define SPLITWISE_TESTING_SCENARIO_H_

/**
 * @file
 * Self-contained DST scenarios: everything one fuzzed run needs -
 * the cluster design, the simulation config knobs under test, the
 * explicit request trace, the fault plan, and an optional seeded
 * bug - in a single value that serializes to `.scenario.json`.
 *
 * Scenarios embed the generated trace rather than a (workload, rps,
 * seed) recipe so the shrinker can remove individual requests and
 * the resulting file replays byte-deterministically forever, even if
 * trace generation changes. See DESIGN.md "DST scenario format".
 */

#include <cstdint>
#include <string>

#include "control/autoscaler.h"
#include "core/cluster.h"
#include "core/fault_plan.h"
#include "core/json.h"
#include "provision/provisioner.h"
#include "sched/policy.h"
#include "testing/invariants.h"
#include "workload/trace.h"

namespace splitwise::testing {

/** Deliberately plantable bugs, for validating the DST harness. */
enum class BugKind {
    kNone,
    /**
     * Allocate KV blocks under a phantom request id on one machine
     * at a fixed time - the time-triggered leak, independent of the
     * workload.
     */
    kOrphanKvBlock,
    /**
     * When the first transferred request starts decoding, allocate a
     * phantom copy of its KV on the prompt machine - modeling a
     * source-side copy the transfer path failed to release. Request-
     * dependent, so shrinking it is meaningful: the minimal repro
     * must keep at least one cross-machine request.
     */
    kLeakPromptKv,
};

const char* bugKindName(BugKind kind);

/** Where and when the seeded bug fires. */
struct BugPlan {
    BugKind kind = BugKind::kNone;
    /** Trigger time (kOrphanKvBlock). */
    sim::TimeUs atUs = 0;
    /** Target machine id (kOrphanKvBlock). */
    int machineId = 0;
};

/** One self-contained fuzzed run. */
struct Scenario {
    std::string name;
    /** Generating seed; provenance only, replay never re-draws. */
    std::uint64_t seed = 0;

    provision::DesignKind designKind = provision::DesignKind::kSplitwiseHH;
    int numPrompt = 1;
    int numToken = 1;

    core::RoutingPolicy routing = core::RoutingPolicy::kJsq;
    std::uint64_t routingSeed = 1;
    std::int64_t shedQueuedTokensBound = 0;
    std::int64_t promptChunkTokens = 0;
    bool kvCheckpointing = false;
    bool usePiecewisePerfModel = false;
    engine::KvRetryPolicy kvRetry;
    /** Record lifecycle spans so span-balance invariants are live. */
    bool traceEnabled = false;
    /**
     * Run an Autoscaler (dstAutoscalerConfig) over the scenario so
     * controller actions race faults and the checker's control-plane
     * invariants are live. Splitwise designs only; ignored for
     * baselines.
     */
    bool autoscale = false;
    /**
     * Scheduling policy under test. kPrefixCache seeds run multi-turn
     * session traces through the prefix-cache plug-in so its
     * refcount/accounting invariants race faults and evictions.
     */
    sched::PolicyKind policy = sched::PolicyKind::kDefault;
    /**
     * Context cap handed to the prefix policy's cache-key logic.
     * Small DST caps force truncation paths that production caps
     * would never reach within a few simulated seconds.
     */
    std::int64_t policyMaxContextTokens = workload::kDefaultMaxContextTokens;

    workload::Trace requests;
    core::FaultPlan faults;
    BugPlan bug;

    /**
     * Runtime-only span-tracking override (never serialized, so
     * pinned repro files replay unchanged): 0 = auto (span tracking
     * follows traceEnabled), 1 = force on, -1 = force off. The soak
     * driver's --spans flag sets this.
     */
    int spanOverride = 0;

    /**
     * Runtime-only ingestion-path selector (never serialized): when
     * true the run feeds the trace through Cluster::run(TraceStream&)
     * instead of the materialized Trace overload. Both paths must
     * produce byte-identical outcomes; the fuzzer flips this on a
     * fraction of seeds so DST continuously proves it.
     */
    bool streamIngest = false;

    int machines() const { return numPrompt + numToken; }

    /** Whether a run of this scenario tracks request spans. */
    bool
    spansEnabled() const
    {
        return spanOverride > 0 || (spanOverride == 0 && traceEnabled);
    }
};

/** Scenario <-> JSON (format `splitwise-dst-scenario-v1`). */
core::JsonValue scenarioToJson(const Scenario& scenario);
Scenario scenarioFromJson(const core::JsonValue& doc);

/** File forms of the above; fatal() on I/O or format errors. */
void writeScenarioFile(const Scenario& scenario, const std::string& path);
Scenario loadScenarioFile(const std::string& path);

/** The ClusterDesign a scenario describes. */
core::ClusterDesign scenarioDesign(const Scenario& scenario);

/** The SimConfig a scenario describes. */
core::SimConfig scenarioSimConfig(const Scenario& scenario);

/**
 * Controller tuning for DST runs: cadence and cooldowns compressed
 * to fractions of a second and thresholds lowered so fuzzed traces
 * a few seconds long still exercise scale/flex/brownout/power-cap
 * paths. The power budget is set just below the design's provisioned
 * draw so cap placement is always active.
 */
control::AutoscalerConfig dstAutoscalerConfig(const core::ClusterDesign& design);

/** What one scenario run produced. */
struct ScenarioOutcome {
    bool violated = false;
    /** Catalog name of the violated invariant ("" when clean). */
    std::string invariant;
    sim::TimeUs violationTime = -1;
    std::string detail;

    /** Report digest of a clean run (zeros after a violation). */
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t restarts = 0;
    std::uint64_t transfers = 0;

    /**
     * Canonical JSON of the whole outcome, embedding the full run
     * report on clean runs. Byte-identical outcomes are the
     * determinism oracle: the same scenario must produce the same
     * string on every replay, across thread counts.
     */
    std::string outcomeJson;

    /**
     * Flight-recorder dump (recent + live span timelines) captured at
     * the moment of a violation; empty on clean runs or when the run
     * tracked no spans. The soak driver writes it next to the shrunk
     * reproducer so the last moments before the violation are
     * reconstructable.
     */
    std::string flightRecorderJson;
};

/**
 * Build the cluster, apply the fault plan, arm the seeded bug and
 * the invariant checker, run to completion, and final-check.
 * Violations (including liveness fatals from Cluster::run) are
 * caught and reported in the outcome, not thrown.
 */
ScenarioOutcome runScenario(const Scenario& scenario,
                            const InvariantOptions& options = {});

}  // namespace splitwise::testing

#endif  // SPLITWISE_TESTING_SCENARIO_H_
