#ifndef SPLITWISE_TESTING_SHRINKER_H_
#define SPLITWISE_TESTING_SHRINKER_H_

/**
 * @file
 * Automatic scenario shrinking: reduce a violating scenario to a
 * minimal reproducer by re-running candidate reductions and keeping
 * the ones that still trip the *same* invariant.
 *
 * Passes (iterated to a fixpoint, bounded by ShrinkOptions::maxRuns):
 *   1. truncate - drop requests arriving, and faults firing, after
 *      the observed violation time (they cannot have contributed);
 *   2. ddmin over requests - chunked removal, halving granularity;
 *   3. ddmin over faults - same, over the fault plan;
 *   4. pool reduction - shrink the token pool (and, when no faults
 *      pin machine ids, the prompt pool).
 *
 * Shrinking the same scenario is fully deterministic: every
 * candidate run replays through runScenario with no fresh
 * randomness.
 */

#include <cstdint>
#include <string>

#include "testing/scenario.h"

namespace splitwise::testing {

/** Shrink budget and cadence. */
struct ShrinkOptions {
    /** Cap on candidate scenario runs across all passes. */
    int maxRuns = 400;
    InvariantOptions invariants;
};

/** A shrink campaign's result. */
struct ShrinkResult {
    /** False when the input scenario did not violate at all. */
    bool reproduced = false;
    /** Invariant the (original and minimal) scenario violates. */
    std::string invariant;
    /** The minimized scenario; equals the input when !reproduced. */
    Scenario minimal;
    /** Candidate runs spent. */
    int runs = 0;
    std::size_t originalRequests = 0;
    std::size_t originalFaults = 0;
};

/** Shrink a failing scenario to a minimal reproducer. */
ShrinkResult shrink(const Scenario& failing, const ShrinkOptions& = {});

}  // namespace splitwise::testing

#endif  // SPLITWISE_TESTING_SHRINKER_H_
