#include "testing/scenario.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "core/report_io.h"
#include "sim/log.h"
#include "workload/trace_stream.h"

namespace splitwise::testing {

namespace {

/** Phantom-id namespace for seeded KV-leak bugs: never collides
 *  with trace request ids, so the orphan invariant must fire. */
constexpr std::uint64_t kPhantomIdBase = 1ull << 62;

constexpr const char* kFormatTag = "splitwise-dst-scenario-v1";

provision::DesignKind
designKindFromName(const std::string& name)
{
    for (const auto kind : provision::allDesignKinds()) {
        if (name == provision::designKindName(kind))
            return kind;
    }
    sim::fatal("scenario: unknown design kind \"" + name + "\"");
}

core::FaultKind
faultKindFromName(const std::string& name)
{
    for (const auto kind :
         {core::FaultKind::kCrash, core::FaultKind::kSlowdown,
          core::FaultKind::kLinkFault, core::FaultKind::kLinkDegrade}) {
        if (name == core::faultKindName(kind))
            return kind;
    }
    sim::fatal("scenario: unknown fault kind \"" + name + "\"");
}

BugKind
bugKindFromName(const std::string& name)
{
    for (const auto kind :
         {BugKind::kNone, BugKind::kOrphanKvBlock, BugKind::kLeakPromptKv}) {
        if (name == bugKindName(kind))
            return kind;
    }
    sim::fatal("scenario: unknown bug kind \"" + name + "\"");
}

}  // namespace

const char*
bugKindName(BugKind kind)
{
    switch (kind) {
      case BugKind::kNone: return "none";
      case BugKind::kOrphanKvBlock: return "orphan_kv_block";
      case BugKind::kLeakPromptKv: return "leak_prompt_kv";
    }
    return "?";
}

core::JsonValue
scenarioToJson(const Scenario& s)
{
    using core::JsonValue;
    JsonValue doc = JsonValue::makeObject();
    doc.set("format", JsonValue(std::string(kFormatTag)));
    doc.set("name", JsonValue(s.name));
    doc.set("seed", JsonValue(static_cast<std::int64_t>(s.seed)));

    JsonValue design = JsonValue::makeObject();
    design.set("kind", JsonValue(std::string(
                           provision::designKindName(s.designKind))));
    design.set("prompt", JsonValue(static_cast<std::int64_t>(s.numPrompt)));
    design.set("token", JsonValue(static_cast<std::int64_t>(s.numToken)));
    doc.set("design", design);

    JsonValue config = JsonValue::makeObject();
    config.set("routing",
               JsonValue(std::string(
                   s.routing == core::RoutingPolicy::kJsq ? "jsq"
                                                          : "random")));
    config.set("routing_seed",
               JsonValue(static_cast<std::int64_t>(s.routingSeed)));
    config.set("shed_queued_tokens_bound",
               JsonValue(s.shedQueuedTokensBound));
    config.set("prompt_chunk_tokens", JsonValue(s.promptChunkTokens));
    config.set("kv_checkpointing", JsonValue(s.kvCheckpointing));
    config.set("use_piecewise_perf_model",
               JsonValue(s.usePiecewisePerfModel));
    config.set("trace_enabled", JsonValue(s.traceEnabled));
    config.set("autoscale", JsonValue(s.autoscale));
    config.set("policy", JsonValue(std::string(
                             sched::policyKindName(s.policy))));
    config.set("policy_max_context_tokens",
               JsonValue(s.policyMaxContextTokens));
    JsonValue retry = JsonValue::makeObject();
    retry.set("max_retries",
              JsonValue(static_cast<std::int64_t>(s.kvRetry.maxRetries)));
    retry.set("backoff_base_us", JsonValue(s.kvRetry.backoffBaseUs));
    retry.set("backoff_multiplier", JsonValue(s.kvRetry.backoffMultiplier));
    retry.set("timeout_us", JsonValue(s.kvRetry.timeoutUs));
    config.set("kv_retry", retry);
    doc.set("config", config);

    JsonValue requests = core::JsonValue::makeArray();
    for (const auto& r : s.requests) {
        JsonValue req = JsonValue::makeObject();
        req.set("id", JsonValue(static_cast<std::int64_t>(r.id)));
        req.set("arrival_us", JsonValue(r.arrival));
        req.set("prompt_tokens", JsonValue(r.promptTokens));
        req.set("output_tokens", JsonValue(r.outputTokens));
        req.set("priority", JsonValue(static_cast<std::int64_t>(r.priority)));
        req.set("session", JsonValue(static_cast<std::int64_t>(r.session)));
        req.set("turn", JsonValue(static_cast<std::int64_t>(r.turn)));
        requests.push(req);
    }
    doc.set("requests", requests);

    JsonValue faults = core::JsonValue::makeArray();
    for (const auto& f : s.faults.events) {
        JsonValue ev = JsonValue::makeObject();
        ev.set("kind",
               JsonValue(std::string(core::faultKindName(f.kind))));
        ev.set("machine", JsonValue(static_cast<std::int64_t>(f.machineId)));
        ev.set("at_us", JsonValue(f.at));
        ev.set("duration_us", JsonValue(f.durationUs));
        ev.set("factor", JsonValue(f.factor));
        faults.push(ev);
    }
    doc.set("faults", faults);

    JsonValue bug = JsonValue::makeObject();
    bug.set("kind", JsonValue(std::string(bugKindName(s.bug.kind))));
    bug.set("at_us", JsonValue(s.bug.atUs));
    bug.set("machine", JsonValue(static_cast<std::int64_t>(s.bug.machineId)));
    doc.set("bug", bug);
    return doc;
}

Scenario
scenarioFromJson(const core::JsonValue& doc)
{
    if (doc.at("format").asString() != kFormatTag) {
        sim::fatal("scenario: unsupported format \"" +
                   doc.at("format").asString() + "\"");
    }
    Scenario s;
    s.name = doc.at("name").asString();
    s.seed = static_cast<std::uint64_t>(doc.at("seed").asInt());

    const auto& design = doc.at("design");
    s.designKind = designKindFromName(design.at("kind").asString());
    s.numPrompt = static_cast<int>(design.at("prompt").asInt());
    s.numToken = static_cast<int>(design.at("token").asInt());

    const auto& config = doc.at("config");
    s.routing = config.at("routing").asString() == "jsq"
                    ? core::RoutingPolicy::kJsq
                    : core::RoutingPolicy::kRandom;
    s.routingSeed =
        static_cast<std::uint64_t>(config.at("routing_seed").asInt());
    s.shedQueuedTokensBound = config.at("shed_queued_tokens_bound").asInt();
    s.promptChunkTokens = config.at("prompt_chunk_tokens").asInt();
    s.kvCheckpointing = config.at("kv_checkpointing").asBool();
    s.usePiecewisePerfModel = config.at("use_piecewise_perf_model").asBool();
    s.traceEnabled = config.at("trace_enabled").asBool();
    // Absent in pre-control-plane scenario files; default off keeps
    // pinned repros replaying byte-identically.
    if (config.has("autoscale"))
        s.autoscale = config.at("autoscale").asBool();
    // Absent in pre-policy scenario files; the defaults replay them
    // exactly as the two-level scheduler always ran them.
    if (config.has("policy") &&
        !sched::parsePolicyKind(config.at("policy").asString(), &s.policy)) {
        sim::fatal("scenario: unknown policy \"" +
                   config.at("policy").asString() + "\"");
    }
    if (config.has("policy_max_context_tokens")) {
        s.policyMaxContextTokens =
            config.at("policy_max_context_tokens").asInt();
    }
    const auto& retry = config.at("kv_retry");
    s.kvRetry.maxRetries = static_cast<int>(retry.at("max_retries").asInt());
    s.kvRetry.backoffBaseUs = retry.at("backoff_base_us").asInt();
    s.kvRetry.backoffMultiplier = retry.at("backoff_multiplier").asNumber();
    s.kvRetry.timeoutUs = retry.at("timeout_us").asInt();

    for (const auto& req : doc.at("requests").items()) {
        workload::Request r;
        r.id = static_cast<std::uint64_t>(req.at("id").asInt());
        r.arrival = req.at("arrival_us").asInt();
        r.promptTokens = req.at("prompt_tokens").asInt();
        r.outputTokens = req.at("output_tokens").asInt();
        if (req.has("priority"))
            r.priority = static_cast<int>(req.at("priority").asInt());
        if (req.has("session")) {
            r.session = static_cast<std::uint64_t>(req.at("session").asInt());
            r.turn = static_cast<int>(req.at("turn").asInt());
        }
        s.requests.push_back(r);
    }

    for (const auto& ev : doc.at("faults").items()) {
        core::FaultEvent f;
        f.kind = faultKindFromName(ev.at("kind").asString());
        f.machineId = static_cast<int>(ev.at("machine").asInt());
        f.at = ev.at("at_us").asInt();
        f.durationUs = ev.at("duration_us").asInt();
        f.factor = ev.at("factor").asNumber();
        s.faults.add(f);
    }

    const auto& bug = doc.at("bug");
    s.bug.kind = bugKindFromName(bug.at("kind").asString());
    s.bug.atUs = bug.at("at_us").asInt();
    s.bug.machineId = static_cast<int>(bug.at("machine").asInt());
    return s;
}

void
writeScenarioFile(const Scenario& scenario, const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("writeScenarioFile: cannot open " + path);
    out << scenarioToJson(scenario).dump() << '\n';
}

Scenario
loadScenarioFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("loadScenarioFile: cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return scenarioFromJson(core::JsonValue::parse(text.str()));
}

core::ClusterDesign
scenarioDesign(const Scenario& scenario)
{
    return provision::makeDesign(scenario.designKind, scenario.numPrompt,
                                 scenario.numToken);
}

control::AutoscalerConfig
dstAutoscalerConfig(const core::ClusterDesign& design)
{
    control::AutoscalerConfig cfg;
    cfg.tickIntervalUs = sim::msToUs(200.0);
    cfg.slidingWindowUs = sim::secondsToUs(2.0);
    cfg.provisioningLeadUs = sim::msToUs(400.0);
    cfg.scaleCooldownUs = sim::msToUs(900.0);
    cfg.brownoutCooldownUs = sim::msToUs(400.0);
    cfg.ttftScaleUpSlowdown = 2.5;
    cfg.tbtScaleUpSlowdown = 2.0;
    cfg.queuedTokensHighPerMachine = 1500;
    cfg.kvHighUtilization = 0.6;
    cfg.ttftScaleDownSlowdown = 2.0;
    cfg.tbtScaleDownSlowdown = 2.0;
    cfg.queuedTokensLowPerMachine = 600;
    cfg.kvLowUtilization = 0.35;
    cfg.brownoutQueuedTokensPerMachine = 4000;
    cfg.brownoutTtftSlowdown = 5.0;
    cfg.powerBudgetWatts = design.footprint().powerWatts * 0.9;
    return cfg;
}

core::SimConfig
scenarioSimConfig(const Scenario& scenario)
{
    core::SimConfig config;
    config.cls.routing = scenario.routing;
    config.cls.routingSeed = scenario.routingSeed;
    config.cls.shedQueuedTokensBound = scenario.shedQueuedTokensBound;
    config.mls.promptChunkTokens = scenario.promptChunkTokens;
    config.kvCheckpointing = scenario.kvCheckpointing;
    config.usePiecewisePerfModel = scenario.usePiecewisePerfModel;
    config.kvRetry = scenario.kvRetry;
    config.policy.kind = scenario.policy;
    config.policy.maxContextTokens = scenario.policyMaxContextTokens;
    config.telemetry.traceEnabled = scenario.traceEnabled;
    // Span tracking rides the trace switch (or the explicit
    // override) so fuzzed runs exercise the span-balance invariant.
    config.telemetry.spanTracking = scenario.spansEnabled();
    // Every scenario declares a live-set budget: no run may ever hold
    // more pool slots than it has requests, so the checker's
    // live-set-bound invariant is armed on every DST run.
    config.maxLiveRequests =
        std::max<std::size_t>(std::size_t{1}, scenario.requests.size());
    return config;
}

ScenarioOutcome
runScenario(const Scenario& scenario, const InvariantOptions& options)
{
    scenario.faults.validate(scenario.machines());

    ScenarioOutcome outcome;
    bool leaked = false;

    core::Cluster cluster(model::llama2_70b(), scenarioDesign(scenario),
                          scenarioSimConfig(scenario));
    core::FaultInjector injector(cluster);
    injector.apply(scenario.faults);

    // Seeded bugs install their hooks before the checker's, so the
    // corruption lands just before the same quiescent point's check.
    if (scenario.bug.kind == BugKind::kOrphanKvBlock) {
        cluster.simulator().postAfter(scenario.bug.atUs, [&cluster,
                                                             &scenario] {
            const auto idx =
                static_cast<std::size_t>(scenario.bug.machineId);
            cluster.machines()[idx]->mls().blocks().allocate(
                kPhantomIdBase + 1, 16);
        });
    } else if (scenario.bug.kind == BugKind::kLeakPromptKv) {
        cluster.simulator().addTimeAdvanceHook([&cluster,
                                                &leaked](sim::TimeUs) {
            if (leaked)
                return;
            cluster.requestPool().forEachLive(
                [&](const engine::LiveRequest& req) {
                    if (leaked || req.terminal() ||
                        req.phase != engine::RequestPhase::kDecoding ||
                        req.promptMachine < 0 ||
                        req.promptMachine == req.tokenMachine) {
                        return;
                    }
                    // The "forgotten" source-side copy after a transfer.
                    auto& blocks =
                        cluster.machines()[static_cast<std::size_t>(
                                               req.promptMachine)]
                            ->mls()
                            .blocks();
                    if (blocks.allocate(kPhantomIdBase + req.spec.id, 16))
                        leaked = true;
                });
        });
    }

    // The controller posts its own tick events, so it must exist
    // before run(); splitwise-only because baselines have no pools
    // to scale.
    std::unique_ptr<control::Autoscaler> autoscaler;
    if (scenario.autoscale && cluster.design().splitwise) {
        autoscaler = std::make_unique<control::Autoscaler>(
            cluster, dstAutoscalerConfig(cluster.design()));
    }

    InvariantChecker checker(cluster, options);
    if (autoscaler)
        checker.attachController(autoscaler.get());
    try {
        // Both ingestion paths must be byte-identical; the fuzzer
        // flips streamIngest on a fraction of seeds to prove it.
        workload::VectorTraceStream stream(scenario.requests);
        core::RunReport report = scenario.streamIngest
                                     ? cluster.run(stream)
                                     : cluster.run(scenario.requests);
        if (autoscaler)
            autoscaler->fillReport(report);
        checker.finalCheck(report);
        outcome.completed = report.requests.completed();
        outcome.rejected = report.rejected;
        outcome.restarts = report.restarts;
        outcome.transfers = report.transfers.transfers;

        // Splice the report text directly: reportToJson already emits
        // the compact dump() style, and round-tripping it through a
        // JsonValue DOM per scenario dominated the spans-on cost of
        // the whole DST harness.
        outcome.outcomeJson =
            "{\"violated\":false,\"report\":" + core::reportToJson(report) +
            "}";
    } catch (const InvariantViolation& v) {
        outcome.violated = true;
        outcome.invariant = v.invariant();
        outcome.violationTime = v.at();
        outcome.detail = v.detail();
    } catch (const std::runtime_error& e) {
        // Cluster::run fatals (deadlocked requests, config errors)
        // count as liveness violations: the scenario never drained.
        outcome.violated = true;
        outcome.invariant = "liveness";
        outcome.violationTime = cluster.simulator().now();
        outcome.detail = e.what();
    }

    if (outcome.violated) {
        core::JsonValue json = core::JsonValue::makeObject();
        json.set("violated", core::JsonValue(true));
        json.set("invariant", core::JsonValue(outcome.invariant));
        json.set("violation_time_us", core::JsonValue(outcome.violationTime));
        json.set("detail", core::JsonValue(outcome.detail));
        outcome.outcomeJson = json.dump();
        // Snapshot the span flight recorder before the cluster (and
        // its tracker) go out of scope.
        if (cluster.spanTracker()) {
            outcome.flightRecorderJson =
                cluster.spanTracker()->flightRecorderJson();
        }
    }
    return outcome;
}

}  // namespace splitwise::testing
