#ifndef SPLITWISE_TESTING_INVARIANTS_H_
#define SPLITWISE_TESTING_INVARIANTS_H_

/**
 * @file
 * Continuous cross-layer invariant checking for deterministic
 * simulation testing (DST).
 *
 * The InvariantChecker attaches to the simulator's time-advance hook,
 * which fires exactly when the clock is about to move: every event at
 * earlier timestamps has fully executed, so the cluster is at a
 * quiescent point and conservation laws must hold. Checking there -
 * rather than inside event handlers - avoids false positives from
 * transiently inconsistent mid-timestamp state (e.g. a request whose
 * phase changed but whose KV release runs two callbacks later in the
 * same instant).
 *
 * The catalog of checked invariants is documented in DESIGN.md
 * ("DST invariant catalog"); each check names itself so a violation
 * pinpoints the broken law, the simulated time, and the offender.
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "control/autoscaler.h"
#include "core/cluster.h"

namespace splitwise::testing {

/** A broken conservation law: which one, when, and the evidence. */
class InvariantViolation : public std::runtime_error {
  public:
    InvariantViolation(std::string invariant, sim::TimeUs at,
                       std::string detail);

    /** Catalog name of the violated invariant (e.g. "kv-orphan"). */
    const std::string& invariant() const { return invariant_; }

    /** Simulated time of the quiescent point that failed. */
    sim::TimeUs at() const { return at_; }

    /** Human-readable evidence. */
    const std::string& detail() const { return detail_; }

  private:
    std::string invariant_;
    sim::TimeUs at_;
    std::string detail_;
};

/** Checking cadence knobs. */
struct InvariantOptions {
    /**
     * Check every Nth clock advance (1 = every quiescent point).
     * Soak drivers raise this to trade detection latency for speed;
     * the final post-run check always runs in full.
     */
    int checkEveryNthAdvance = 1;
    /**
     * Run the span-timeline structural sweep only every Nth
     * invariant check (the final check always sweeps). Span defects
     * cannot self-heal - segments are append-only, a gap or leaked
     * timeline persists - so thinning trades detection *latency*,
     * not detection, for keeping the spans-on DST overhead small.
     */
    int spanCheckEveryNth = 64;
};

/**
 * Armed invariant checking over one Cluster run.
 *
 * Construct after the Cluster (and after any fault plan / bug hooks
 * are installed) and before run(); destroy before the Cluster. The
 * checker walks the cluster's live requests, machines, scheduler,
 * transfer engine, and telemetry at every quiescent point and throws
 * InvariantViolation out of Cluster::run() on the first broken law.
 *
 * Checking is strictly opt-in: benchmarks that never construct a
 * checker pay only an empty hook-vector test per clock advance.
 */
class InvariantChecker {
  public:
    explicit InvariantChecker(core::Cluster& cluster,
                              InvariantOptions options = {});
    ~InvariantChecker();

    InvariantChecker(const InvariantChecker&) = delete;
    InvariantChecker& operator=(const InvariantChecker&) = delete;

    /** Run the full catalog at the current simulated time. */
    void checkNow();

    /**
     * Also check the control plane's action log: scale actions on
     * one pool spaced at least the configured cooldown apart,
     * brownout moves of exactly one level inside [0, 3] respecting
     * their own cooldown, and the scheduler's ladder level matching
     * the controller's. Attach after constructing the Autoscaler.
     */
    void attachController(const control::Autoscaler* controller)
    {
        controller_ = controller;
    }

    /**
     * Post-run balance checks: every request terminal, the report's
     * aggregates match the live state, all KV released, no open
     * spans, no in-flight transfers.
     */
    void finalCheck(const core::RunReport& report);

    /** Quiescent-point checks executed so far. */
    std::uint64_t checksRun() const { return checksRun_; }

  private:
    /** Last-seen per-request state for stale-event detection. */
    struct Snapshot {
        engine::RequestPhase phase = engine::RequestPhase::kPromptQueued;
        std::int64_t generated = 0;
        std::uint32_t epoch = 0;
        int restarts = 0;
        int preemptions = 0;
        sim::TimeUs doneTime = -1;
    };

    [[noreturn]] void violate(const char* invariant,
                              const std::string& detail) const;

    void onAdvance(sim::TimeUs next);
    void refreshIndex();
    void checkRequests();
    void checkMachines();
    void checkController();
    void checkTransfers();
    void checkTelemetry();
    /** Span-tracker balance + structural integrity (span-balance). */
    void checkSpanTimelines();
    void checkEventQueue();

    core::Cluster& cluster_;
    InvariantOptions options_;
    const control::Autoscaler* controller_ = nullptr;
    /** Control actions already validated. */
    std::size_t actionCursor_ = 0;
    sim::TimeUs lastInitPrompt_ = -1;
    sim::TimeUs lastInitToken_ = -1;
    int lastBrownoutLevel_ = 0;
    sim::TimeUs lastBrownoutAt_ = -1;
    sim::Simulator::HookId hook_;
    std::uint64_t advances_ = 0;
    std::uint64_t checksRun_ = 0;
    /** Modular counter behind InvariantOptions::spanCheckEveryNth. */
    std::uint64_t spanCheckTick_ = 0;
    sim::TimeUs lastAdvance_ = -1;
    engine::KvTransferEngine::Stats lastTransferStats_;
    /**
     * Pool version byId_ was built against; rebuilt whenever the
     * pool acquires or releases a slot (recycling means size alone
     * cannot detect churn).
     */
    std::uint64_t poolVersion_ = ~0ull;
    std::unordered_map<std::uint64_t, const engine::LiveRequest*> byId_;
    std::unordered_map<std::uint64_t, Snapshot> lastSeen_;
};

}  // namespace splitwise::testing

#endif  // SPLITWISE_TESTING_INVARIANTS_H_
