/**
 * @file
 * splitwise_server: the live serving front-end binary.
 *
 * Serves the HTTP completion API (see server/serving.h) over one
 * cluster run. `--clock wall` sleeps until the next simulation event
 * and is preempted by new arrivals — real-time serving; `--clock
 * sim` runs virtual time at full speed — what the CI smoke uses.
 * `--record-out` captures the live session for bit-exact replay;
 * `--replay` re-runs such a capture offline under the invariant
 * checker and writes the report, so
 *     serve --record-out a.json --report-out live.json
 *     replay a.json --report-out replay.json
 * must produce byte-identical reports.
 *
 * Exits 0 only when every accepted request resolved (no leaks).
 */

#include <csignal>
#include <cstdio>
#include <string>

#include "bench/arg_parser.h"
#include "core/designs.h"
#include "core/ingress.h"
#include "core/recording.h"
#include "core/report_io.h"
#include "core/run.h"
#include "model/llm_config.h"
#include "sched/policy.h"
#include "server/http_server.h"
#include "server/serving.h"
#include "sim/clock.h"
#include "sim/log.h"
#include "testing/invariants.h"
#include "workload/trace_stream.h"

namespace {

splitwise::core::Ingress* g_signal_ingress = nullptr;

void
onSignal(int)
{
    // shutdown() is async-signal-unsafe in principle (mutex), but
    // the handler only runs in the interactive wall-clock mode where
    // a rare self-deadlock beats losing the drain-and-report path.
    if (g_signal_ingress)
        g_signal_ingress->shutdown();
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace splitwise;

    int port = 8080;
    std::string clock_name = "wall";
    std::string policy_name = "default";
    int prompt_machines = 1;
    int token_machines = 1;
    std::string record_out;
    std::string report_out;
    std::string replay_path;
    bool check_invariants = false;

    bench::ArgParser parser(
        "splitwise_server",
        "live HTTP serving front-end over the splitwise cluster");
    parser.addInt("--port", &port,
                  "listen port on 127.0.0.1 (0 = ephemeral; the bound "
                  "port is printed)");
    parser.addString("--clock", &clock_name,
                     "serving clock: wall (real-time) or sim (virtual "
                     "time, full speed)");
    parser.addString("--policy", &policy_name,
                     "scheduling policy (" + sched::policyNames() + ")");
    parser.addInt("--prompt-machines", &prompt_machines,
                  "prompt-pool machine count");
    parser.addInt("--token-machines", &token_machines,
                  "token-pool machine count");
    parser.addString("--record-out", &record_out,
                     "capture the live session for bit-exact replay");
    parser.addString("--report-out", &report_out,
                     "write the run report JSON");
    parser.addString("--replay", &replay_path,
                     "re-run a recorded session offline instead of "
                     "serving");
    parser.addFlag("--check-invariants", &check_invariants,
                   "replay under the DST invariant checker");
    parser.addValidator([&] {
        if (clock_name != "wall" && clock_name != "sim")
            sim::fatal("--clock must be wall or sim");
        if (!sched::findPolicy(policy_name))
            sim::fatal("--policy: unknown policy '" + policy_name +
                       "' (known: " + sched::policyNames() + ")");
        if (prompt_machines < 1 || token_machines < 0)
            sim::fatal("bad machine counts");
        if (port < 0 || port > 65535)
            sim::fatal("--port out of range");
    });
    parser.parse(argc, argv);

    core::RunOptions options;
    options.llm = model::llama2_70b();
    options.design = token_machines > 0
                         ? core::splitwiseHH(prompt_machines, token_machines)
                         : core::baselineH100(prompt_machines);
    options.sim.policy.kind = sched::findPolicy(policy_name)->kind;

    if (!replay_path.empty()) {
        const core::SessionRecording recording =
            core::SessionRecording::load(replay_path);
        // Built by hand (not core::replay) so the invariant checker
        // can attach to the cluster before the run starts.
        core::Cluster cluster(options.llm, options.design, options.sim);
        std::unique_ptr<testing::InvariantChecker> checker;
        if (check_invariants)
            checker = std::make_unique<testing::InvariantChecker>(cluster);
        for (const auto& cancel : recording.cancels)
            cluster.scheduleCancel(cancel.requestId, cancel.at);
        workload::VectorTraceStream stream(recording.requests);
        const core::RunReport report = cluster.run(stream);
        if (checker)
            checker->finalCheck(report);
        if (!report_out.empty())
            core::writeReportJson(report, report_out);
        std::printf("replayed %zu requests, %zu cancels, %lld us "
                    "simulated%s\n",
                    recording.requests.size(), recording.cancels.size(),
                    static_cast<long long>(report.simulatedUs),
                    check_invariants ? " (invariants OK)" : "");
        return 0;
    }

    core::Ingress ingress;
    core::SessionRecording capture;

    g_signal_ingress = &ingress;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    server::CompletionService service(ingress);
    server::HttpServer http(
        [&service](const server::HttpRequest& request,
                   server::ResponseWriter& writer) {
            service.handle(request, writer);
        });
    if (!http.start(port)) {
        std::fprintf(stderr, "cannot bind 127.0.0.1:%d\n", port);
        return 1;
    }
    std::printf("listening port=%d clock=%s policy=%s design=%s\n",
                http.port(), clock_name.c_str(), policy_name.c_str(),
                options.design.name.c_str());
    std::fflush(stdout);

    core::RunReport report;
    if (clock_name == "sim") {
        sim::SimClock clock;
        report = core::runLive(options, ingress, clock,
                               record_out.empty() ? nullptr : &capture);
    } else {
        sim::WallClock clock;
        report = core::runLive(options, ingress, clock,
                               record_out.empty() ? nullptr : &capture);
    }

    http.stop();
    g_signal_ingress = nullptr;

    if (!record_out.empty()) {
        capture.save(record_out);
        std::printf("recorded %zu requests, %zu cancels -> %s\n",
                    capture.requests.size(), capture.cancels.size(),
                    record_out.c_str());
    }
    if (!report_out.empty())
        core::writeReportJson(report, report_out);

    const std::uint64_t leaked = ingress.unresolved();
    std::printf("served accepted=%llu completed=%llu rejected=%llu "
                "shutdown_rejected=%llu leaked=%llu\n",
                static_cast<unsigned long long>(ingress.accepted()),
                static_cast<unsigned long long>(ingress.completed()),
                static_cast<unsigned long long>(
                    ingress.rejectedByAdmission()),
                static_cast<unsigned long long>(
                    ingress.rejectedAtShutdown()),
                static_cast<unsigned long long>(leaked));
    return leaked == 0 ? 0 : 1;
}
