#ifndef SPLITWISE_SERVER_HTTP_CLIENT_H_
#define SPLITWISE_SERVER_HTTP_CLIENT_H_

/**
 * @file
 * Blocking loopback HTTP/1.1 client for the load driver and the
 * server tests. One request per connection, mirroring the server's
 * Connection: close framing.
 */

#include <functional>
#include <string>

namespace splitwise::server {

/** A completed (non-streaming) HTTP exchange. */
struct HttpResult {
    /** HTTP status; 0 when the connection failed outright. */
    int status = 0;
    std::string body;
};

/** Issue one request and read the whole response (both framings). */
HttpResult httpRequest(int port, const std::string& method,
                       const std::string& path,
                       const std::string& body = "");

/**
 * Issue one request and stream the chunked response body through
 * @p on_chunk as data arrives. Returning false from the callback
 * aborts the stream (closes the socket mid-response — how a client
 * hang-up looks to the server).
 *
 * @return the HTTP status, or 0 when the connection failed.
 */
int httpStream(int port, const std::string& method,
               const std::string& path, const std::string& body,
               const std::function<bool(const std::string&)>& on_chunk);

}  // namespace splitwise::server

#endif  // SPLITWISE_SERVER_HTTP_CLIENT_H_
