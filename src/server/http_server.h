#ifndef SPLITWISE_SERVER_HTTP_SERVER_H_
#define SPLITWISE_SERVER_HTTP_SERVER_H_

/**
 * @file
 * A small loopback HTTP/1.1 server for the live serving front-end.
 *
 * Deliberately minimal: POSIX sockets only (no third-party
 * dependency), thread-per-connection, `Connection: close` on every
 * response, chunked transfer-encoding for token streams. The handler
 * runs on the connection's thread and may block for the stream's
 * lifetime; all serving-engine concurrency is behind core::Ingress,
 * so handlers only touch the thread-safe boundary.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace splitwise::server {

/** One parsed HTTP request (request line + body; headers dropped
 *  except Content-Length, which framing consumes). */
struct HttpRequest {
    std::string method;
    std::string path;
    std::string body;
};

/**
 * Response writer handed to the handler. Either writeFull() once, or
 * beginChunked() followed by writeChunk()s and endChunked(). Write
 * failures (client hung up) surface as false so streaming handlers
 * can cancel their upstream work.
 */
class ResponseWriter {
  public:
    explicit ResponseWriter(int fd) : fd_(fd) {}

    /** One-shot response with a full body. @return false when the
     *  client is gone. */
    bool writeFull(int status, const std::string& content_type,
                   const std::string& body);

    /** Start a chunked streaming response. */
    bool beginChunked(int status, const std::string& content_type);

    /** Send one chunk. @return false when the client is gone. */
    bool writeChunk(const std::string& data);

    /** Send the terminating zero chunk. */
    bool endChunked();

  private:
    bool sendAll(const char* data, std::size_t size);

    int fd_;
    bool broken_ = false;
};

/** Request handler: runs on the connection thread, may block. */
using HttpHandler =
    std::function<void(const HttpRequest&, ResponseWriter&)>;

/**
 * The listener: accepts loopback connections until stop(). Each
 * connection gets its own thread, reads one request, runs the
 * handler, and closes (Connection: close keeps framing trivial).
 */
class HttpServer {
  public:
    explicit HttpServer(HttpHandler handler);
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start accepting.
     * @return false when the port cannot be bound.
     */
    bool start(int port);

    /** The bound port (after start). */
    int port() const { return port_; }

    /** Stop accepting, close the listener, join every connection. */
    void stop();

  private:
    void acceptLoop();
    void handleConnection(int fd);

    HttpHandler handler_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread acceptThread_;
    std::mutex connMu_;
    std::vector<std::thread> connections_;
};

}  // namespace splitwise::server

#endif  // SPLITWISE_SERVER_HTTP_SERVER_H_
