#include "server/http_client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace splitwise::server {

namespace {

int
connectLoopback(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

bool
sendRequest(int fd, const std::string& method, const std::string& path,
            const std::string& body)
{
    std::string request = method + " " + path + " HTTP/1.1\r\n" +
                          "Host: 127.0.0.1\r\n" +
                          "Content-Length: " + std::to_string(body.size()) +
                          "\r\nConnection: close\r\n\r\n" + body;
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** Incremental chunked-framing decoder over the response byte
 *  stream; forwards decoded payload to the callback. */
class ChunkDecoder {
  public:
    explicit ChunkDecoder(
        const std::function<bool(const std::string&)>& on_chunk)
        : onChunk_(on_chunk)
    {
    }

    /** Feed response-body bytes. @return false to abort (callback
     *  declined or framing ended). */
    bool
    feed(const char* data, std::size_t size)
    {
        buffer_.append(data, size);
        for (;;) {
            if (state_ == State::kTrailingCrlf) {
                if (buffer_.size() < 2)
                    return true;
                buffer_.erase(0, 2);
                state_ = State::kSizeLine;
            }
            if (state_ == State::kSizeLine) {
                const auto eol = buffer_.find("\r\n");
                if (eol == std::string::npos)
                    return true;  // Need more bytes for the size line.
                remaining_ = std::strtoull(buffer_.c_str(), nullptr, 16);
                buffer_.erase(0, eol + 2);
                if (remaining_ == 0)
                    return false;  // Terminating chunk: stream done.
                state_ = State::kData;
            }
            if (buffer_.empty())
                return true;
            const std::size_t take =
                std::min<std::size_t>(remaining_, buffer_.size());
            if (onChunk_ && !onChunk_(buffer_.substr(0, take)))
                return false;
            buffer_.erase(0, take);
            remaining_ -= take;
            if (remaining_ == 0)
                state_ = State::kTrailingCrlf;
        }
    }

  private:
    enum class State { kSizeLine, kData, kTrailingCrlf };

    const std::function<bool(const std::string&)>& onChunk_;
    std::string buffer_;
    State state_ = State::kSizeLine;
    std::size_t remaining_ = 0;
};

}  // namespace

int
httpStream(int port, const std::string& method, const std::string& path,
           const std::string& body,
           const std::function<bool(const std::string&)>& on_chunk)
{
    const int fd = connectLoopback(port);
    if (fd < 0)
        return 0;
    if (!sendRequest(fd, method, path, body)) {
        ::close(fd);
        return 0;
    }

    std::string head;
    std::size_t header_end = std::string::npos;
    char buffer[4096];
    while (header_end == std::string::npos) {
        const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
        if (n <= 0) {
            ::close(fd);
            return 0;
        }
        head.append(buffer, static_cast<std::size_t>(n));
        header_end = head.find("\r\n\r\n");
    }
    int status = 0;
    std::sscanf(head.c_str(), "HTTP/1.1 %d", &status);
    const bool chunked =
        head.substr(0, header_end).find("Transfer-Encoding: chunked") !=
        std::string::npos;

    std::string rest = head.substr(header_end + 4);
    if (chunked) {
        ChunkDecoder decoder(on_chunk);
        bool more = decoder.feed(rest.data(), rest.size());
        while (more) {
            const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
            if (n <= 0)
                break;
            more = decoder.feed(buffer, static_cast<std::size_t>(n));
        }
    } else {
        // Content-Length framing: drain until close, then forward.
        for (;;) {
            const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
            if (n <= 0)
                break;
            rest.append(buffer, static_cast<std::size_t>(n));
        }
        if (on_chunk && !rest.empty())
            on_chunk(rest);
    }
    ::close(fd);
    return status;
}

HttpResult
httpRequest(int port, const std::string& method, const std::string& path,
            const std::string& body)
{
    HttpResult result;
    result.status = httpStream(port, method, path, body,
                               [&result](const std::string& data) {
                                   result.body += data;
                                   return true;
                               });
    return result;
}

}  // namespace splitwise::server
