/**
 * @file
 * splitwise_load_driver: closed-loop HTTP load generator for the
 * live serving front-end.
 *
 * `--concurrency` worker threads each keep one streaming completion
 * in flight against a running splitwise_server, re-submitting until
 * `--requests` have been issued in total. Every `--cancel-every`-th
 * request is cancelled mid-stream through DELETE, and every
 * `--abort-every`-th stream is abandoned by closing the connection
 * (exercising the server's hang-up auto-cancel path). With
 * `--shutdown` the driver posts /v1/admin/shutdown when done — the
 * CI smoke's clean-drain gate.
 *
 * Exits 0 when every issued request reached a terminal record
 * (finished, rejected, or cancelled-and-finished).
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/arg_parser.h"
#include "core/json.h"
#include "server/http_client.h"
#include "sim/log.h"

int
main(int argc, char** argv)
{
    using namespace splitwise;

    int port = 8080;
    int requests = 100;
    int concurrency = 8;
    int cancel_every = 0;
    int abort_every = 0;
    int prompt_tokens = 512;
    int output_tokens = 64;
    bool shutdown_after = false;

    bench::ArgParser parser(
        "splitwise_load_driver",
        "closed-loop load generator for splitwise_server");
    parser.addInt("--port", &port, "server port on 127.0.0.1");
    parser.addInt("--requests", &requests, "total requests to issue");
    parser.addInt("--concurrency", &concurrency,
                  "concurrent streaming connections");
    parser.addInt("--cancel-every", &cancel_every,
                  "DELETE every Nth request mid-stream (0 = never)");
    parser.addInt("--abort-every", &abort_every,
                  "abandon every Nth stream by closing the "
                  "connection (0 = never)");
    parser.addInt("--prompt-tokens", &prompt_tokens,
                  "prompt length per request");
    parser.addInt("--output-tokens", &output_tokens,
                  "output budget per request");
    parser.addFlag("--shutdown", &shutdown_after,
                   "POST /v1/admin/shutdown once all requests resolved");
    parser.addValidator([&] {
        if (requests < 1 || concurrency < 1)
            sim::fatal("--requests and --concurrency must be >= 1");
        if (prompt_tokens < 1 || output_tokens < 1)
            sim::fatal("token counts must be >= 1");
    });
    parser.parse(argc, argv);

    std::atomic<int> next{0};
    std::atomic<int> finished{0};
    std::atomic<int> rejected{0};
    std::atomic<int> aborted{0};
    std::atomic<int> failed{0};

    auto worker = [&] {
        for (;;) {
            const int n = next.fetch_add(1);
            if (n >= requests)
                return;
            const bool cancel =
                cancel_every > 0 && (n + 1) % cancel_every == 0;
            const bool abandon =
                abort_every > 0 && (n + 1) % abort_every == 0;

            core::JsonValue body = core::JsonValue::makeObject();
            body.set("prompt_tokens",
                     core::JsonValue(static_cast<std::int64_t>(
                         prompt_tokens)));
            body.set("output_tokens",
                     core::JsonValue(static_cast<std::int64_t>(
                         output_tokens)));

            bool terminal = false;
            bool was_abandoned = false;
            std::string partial;
            const int status = server::httpStream(
                port, "POST", "/v1/completions", body.dump(),
                [&](const std::string& data) {
                    partial += data;
                    // Act on each complete NDJSON record.
                    std::size_t eol;
                    while ((eol = partial.find('\n')) !=
                           std::string::npos) {
                        const std::string line = partial.substr(0, eol);
                        partial.erase(0, eol + 1);
                        core::JsonValue record;
                        try {
                            record = core::JsonValue::parse(line);
                        } catch (const std::exception&) {
                            return false;  // Corrupt stream: give up.
                        }
                        if (!record.has("id"))
                            return false;
                        if (record.has("rejected")) {
                            terminal = true;
                            return false;
                        }
                        const std::int64_t tokens =
                            record.at("tokens").asInt();
                        if (record.at("finished").asBool()) {
                            terminal = true;
                            return false;
                        }
                        if (abandon && tokens >= 1) {
                            was_abandoned = true;
                            return false;  // Close mid-stream.
                        }
                        if (cancel && tokens == 1) {
                            const std::int64_t id =
                                record.at("id").asInt();
                            server::httpRequest(
                                port, "DELETE",
                                "/v1/completions/" + std::to_string(id));
                        }
                    }
                    return true;
                });

            if (was_abandoned)
                aborted.fetch_add(1);
            else if (status != 200)
                (status == 503 ? rejected : failed).fetch_add(1);
            else if (terminal)
                finished.fetch_add(1);
            else
                failed.fetch_add(1);
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(concurrency));
    for (int i = 0; i < concurrency; ++i)
        workers.emplace_back(worker);
    for (std::thread& t : workers)
        t.join();

    if (shutdown_after)
        server::httpRequest(port, "POST", "/v1/admin/shutdown");

    const int ok = finished.load() + rejected.load() + aborted.load();
    std::printf("issued=%d finished=%d rejected=%d aborted=%d failed=%d\n",
                requests, finished.load(), rejected.load(),
                aborted.load(), failed.load());
    return (ok == requests && failed.load() == 0) ? 0 : 1;
}
