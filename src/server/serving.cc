#include "server/serving.h"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>

#include "core/cluster.h"
#include "core/json.h"
#include "telemetry/metrics_registry.h"

namespace splitwise::server {

namespace {

/**
 * Mailbox between the serving thread (ingress streaming callback)
 * and the HTTP connection thread writing the chunked response.
 * shared_ptr-owned: the callback may outlive the connection when the
 * client hangs up mid-stream.
 */
struct TokenMailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<core::TokenUpdate> updates;
    bool terminal = false;

    void
    push(const core::TokenUpdate& update)
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            updates.push_back(update);
            if (update.finished || update.rejected)
                terminal = true;
        }
        cv.notify_one();
    }

    /** Pop one update, blocking. @return false once drained after
     *  the terminal update. */
    bool
    pop(core::TokenUpdate* out)
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return !updates.empty() || terminal; });
        if (updates.empty())
            return false;
        *out = updates.front();
        updates.pop_front();
        return true;
    }
};

std::string
tokenLine(const core::TokenUpdate& update)
{
    using core::JsonValue;
    JsonValue row = JsonValue::makeObject();
    row.set("id", JsonValue(static_cast<std::int64_t>(update.requestId)));
    if (update.rejected) {
        row.set("rejected", JsonValue(true));
    } else {
        row.set("tokens", JsonValue(update.tokensGenerated));
        row.set("finished", JsonValue(update.finished));
        row.set("at_us", JsonValue(static_cast<std::int64_t>(update.at)));
    }
    return row.dump() + "\n";
}

}  // namespace

void
CompletionService::handle(const HttpRequest& request,
                          ResponseWriter& writer)
{
    if (request.method == "POST" && request.path == "/v1/completions") {
        handleCompletion(request, writer);
        return;
    }
    if (request.method == "DELETE" &&
        request.path.rfind("/v1/completions/", 0) == 0) {
        handleCancel(request.path, writer);
        return;
    }
    if (request.method == "GET" && request.path == "/v1/metrics") {
        handleMetrics(writer);
        return;
    }
    if (request.method == "POST" &&
        request.path == "/v1/admin/shutdown") {
        ingress_.shutdown();
        writer.writeFull(202, "application/json", "{\"draining\":true}");
        return;
    }
    writer.writeFull(404, "application/json",
                     "{\"error\":\"unknown route\"}");
}

void
CompletionService::handleCompletion(const HttpRequest& request,
                                    ResponseWriter& writer)
{
    core::IngressRequest spec;
    try {
        const core::JsonValue body = core::JsonValue::parse(request.body);
        spec.promptTokens = body.at("prompt_tokens").asInt();
        if (body.has("output_tokens"))
            spec.outputTokens = body.at("output_tokens").asInt();
        if (body.has("priority"))
            spec.priority = static_cast<int>(body.at("priority").asInt());
        if (body.has("session"))
            spec.session =
                static_cast<std::uint64_t>(body.at("session").asInt());
        if (body.has("turn"))
            spec.turn = static_cast<int>(body.at("turn").asInt());
    } catch (const std::exception& e) {
        writer.writeFull(400, "application/json",
                         std::string("{\"error\":\"bad request body: ") +
                             e.what() + "\"}");
        return;
    }
    if (spec.promptTokens < 1 || spec.outputTokens < 1) {
        writer.writeFull(400, "application/json",
                         "{\"error\":\"prompt_tokens and output_tokens "
                         "must be >= 1\"}");
        return;
    }

    auto mailbox = std::make_shared<TokenMailbox>();
    core::RequestHandle handle = ingress_.submit(
        spec, [mailbox](const core::TokenUpdate& update) {
            mailbox->push(update);
        });
    if (!handle.valid()) {
        writer.writeFull(503, "application/json",
                         "{\"error\":\"shutting down\"}");
        return;
    }

    if (!writer.beginChunked(200, "application/x-ndjson")) {
        // Client vanished before the first byte; the handle's
        // destructor cancels the request.
        return;
    }
    core::TokenUpdate update;
    while (mailbox->pop(&update)) {
        if (!writer.writeChunk(tokenLine(update)))
            return;  // Hang-up mid-stream: auto-cancel via handle.
        if (update.finished || update.rejected)
            break;
    }
    writer.endChunked();
    // The stream reached its terminal update: nothing left to cancel.
    (void)handle.detach();
}

void
CompletionService::handleCancel(const std::string& path,
                                ResponseWriter& writer)
{
    const std::string id_text =
        path.substr(std::string("/v1/completions/").size());
    char* end = nullptr;
    const std::uint64_t id = std::strtoull(id_text.c_str(), &end, 10);
    if (id == 0 || end == nullptr || *end != '\0') {
        writer.writeFull(400, "application/json",
                         "{\"error\":\"bad request id\"}");
        return;
    }
    ingress_.cancel(id);
    writer.writeFull(202, "application/json", "{\"cancelling\":true}");
}

void
CompletionService::handleMetrics(ResponseWriter& writer)
{
    std::string body;
    const bool live = ingress_.inspect([&body](const core::Cluster& cluster) {
        using core::JsonValue;
        JsonValue doc = JsonValue::makeObject();
        doc.set("simulated_us",
                JsonValue(static_cast<std::int64_t>(
                    cluster.simulator().now())));
        const telemetry::MetricsRegistry& registry = cluster.metrics();
        const std::vector<double> values = registry.sampleValues();
        JsonValue metrics = JsonValue::makeObject();
        for (std::size_t i = 0; i < values.size(); ++i)
            metrics.set(registry.names()[i], JsonValue(values[i]));
        doc.set("metrics", std::move(metrics));
        body = doc.dump();
    });
    if (!live) {
        writer.writeFull(503, "application/json",
                         "{\"error\":\"no serve loop\"}");
        return;
    }
    writer.writeFull(200, "application/json", body);
}

}  // namespace splitwise::server
