#include "server/http_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace splitwise::server {

namespace {

const char*
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

}  // namespace

bool
ResponseWriter::sendAll(const char* data, std::size_t size)
{
    if (broken_)
        return false;
    std::size_t sent = 0;
    while (sent < size) {
        // MSG_NOSIGNAL: a client hang-up must surface as EPIPE, not
        // kill the process with SIGPIPE.
        const ssize_t n =
            ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            broken_ = true;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
ResponseWriter::writeFull(int status, const std::string& content_type,
                          const std::string& body)
{
    char head[256];
    std::snprintf(head, sizeof head,
                  "HTTP/1.1 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  status, statusText(status), content_type.c_str(),
                  body.size());
    if (!sendAll(head, std::strlen(head)))
        return false;
    return sendAll(body.data(), body.size());
}

bool
ResponseWriter::beginChunked(int status, const std::string& content_type)
{
    char head[256];
    std::snprintf(head, sizeof head,
                  "HTTP/1.1 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Transfer-Encoding: chunked\r\n"
                  "Connection: close\r\n\r\n",
                  status, statusText(status), content_type.c_str());
    return sendAll(head, std::strlen(head));
}

bool
ResponseWriter::writeChunk(const std::string& data)
{
    if (data.empty())
        return !broken_;
    char size_line[32];
    std::snprintf(size_line, sizeof size_line, "%zx\r\n", data.size());
    if (!sendAll(size_line, std::strlen(size_line)))
        return false;
    if (!sendAll(data.data(), data.size()))
        return false;
    return sendAll("\r\n", 2);
}

bool
ResponseWriter::endChunked()
{
    return sendAll("0\r\n\r\n", 5);
}

HttpServer::HttpServer(HttpHandler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer()
{
    stop();
}

bool
HttpServer::start(int port)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return false;
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, 128) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (listenFd_ < 0)
        return;
    stopping_.store(true);
    // shutdown() unblocks the accept() so the loop can observe the
    // flag and exit.
    ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    ::close(listenFd_);
    listenFd_ = -1;

    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(connMu_);
        conns.swap(connections_);
    }
    for (std::thread& t : conns) {
        if (t.joinable())
            t.join();
    }
}

void
HttpServer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                return;
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        std::lock_guard<std::mutex> lock(connMu_);
        connections_.emplace_back([this, fd] { handleConnection(fd); });
    }
}

void
HttpServer::handleConnection(int fd)
{
    // Read until the header terminator, then Content-Length more.
    std::string data;
    std::size_t header_end = std::string::npos;
    char buffer[4096];
    while (header_end == std::string::npos) {
        const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
        if (n <= 0) {
            ::close(fd);
            return;
        }
        data.append(buffer, static_cast<std::size_t>(n));
        header_end = data.find("\r\n\r\n");
        if (data.size() > (1u << 20))
            break;  // Oversized header: drop the connection.
    }
    if (header_end == std::string::npos) {
        ::close(fd);
        return;
    }

    HttpRequest request;
    {
        const std::string head = data.substr(0, header_end);
        const auto line_end = head.find("\r\n");
        const std::string line = head.substr(0, line_end);
        const auto sp1 = line.find(' ');
        const auto sp2 = line.find(' ', sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos) {
            ::close(fd);
            return;
        }
        request.method = line.substr(0, sp1);
        request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);

        std::size_t content_length = 0;
        std::size_t pos = line_end;
        while (pos != std::string::npos && pos < head.size()) {
            const std::size_t start = pos + 2;
            const std::size_t end = head.find("\r\n", start);
            const std::string header =
                head.substr(start, end == std::string::npos
                                       ? std::string::npos
                                       : end - start);
            if (header.size() > 15) {
                std::string name = header.substr(0, 15);
                for (char& c : name)
                    c = static_cast<char>(std::tolower(c));
                if (name == "content-length:") {
                    content_length = static_cast<std::size_t>(
                        std::strtoull(header.c_str() + 15, nullptr, 10));
                }
            }
            pos = end;
        }

        std::string body = data.substr(header_end + 4);
        while (body.size() < content_length) {
            const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
            if (n <= 0)
                break;
            body.append(buffer, static_cast<std::size_t>(n));
        }
        request.body = std::move(body);
    }

    ResponseWriter writer(fd);
    handler_(request, writer);
    ::close(fd);
}

}  // namespace splitwise::server
