#ifndef SPLITWISE_SERVER_SERVING_H_
#define SPLITWISE_SERVER_SERVING_H_

/**
 * @file
 * The HTTP completion API over core::Ingress.
 *
 * Routes:
 *   POST   /v1/completions        Submit; body
 *       {"prompt_tokens":N, "output_tokens":N, "priority":N,
 *        "session":N, "turn":N} (all but prompt_tokens optional).
 *       Streams one JSON line per token as a chunked response:
 *       {"id":N,"tokens":N,"finished":B,"at_us":N} — or a single
 *       {"id":N,"rejected":true} record when admission control (or
 *       shutdown) sheds the request.
 *   DELETE /v1/completions/<id>   Cancel; the stream finishes at the
 *       next token boundary.
 *   GET    /v1/metrics            Cluster metrics snapshot (JSON
 *       name→value), taken race-free at a quiescent point.
 *   POST   /v1/admin/shutdown     Stop admissions and drain.
 *
 * The handler thread blocks on a small mailbox fed by the ingress
 * streaming callback; a client hang-up mid-stream cancels the
 * request upstream.
 */

#include <cstdint>
#include <string>

#include "core/ingress.h"
#include "server/http_server.h"

namespace splitwise::server {

/** Bridges HTTP connection threads to one core::Ingress. */
class CompletionService {
  public:
    explicit CompletionService(core::Ingress& ingress)
        : ingress_(ingress)
    {
    }

    /** The HttpServer handler: dispatch one request by route. */
    void handle(const HttpRequest& request, ResponseWriter& writer);

  private:
    void handleCompletion(const HttpRequest& request,
                          ResponseWriter& writer);
    void handleCancel(const std::string& path, ResponseWriter& writer);
    void handleMetrics(ResponseWriter& writer);

    core::Ingress& ingress_;
};

}  // namespace splitwise::server

#endif  // SPLITWISE_SERVER_SERVING_H_
