# Empty dependencies file for coding_assistant.
# This may be replaced when dependencies are built.
