file(REMOVE_RECURSE
  "CMakeFiles/coding_assistant.dir/coding_assistant.cpp.o"
  "CMakeFiles/coding_assistant.dir/coding_assistant.cpp.o.d"
  "coding_assistant"
  "coding_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
