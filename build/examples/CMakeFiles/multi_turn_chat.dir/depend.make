# Empty dependencies file for multi_turn_chat.
# This may be replaced when dependencies are built.
