file(REMOVE_RECURSE
  "CMakeFiles/multi_turn_chat.dir/multi_turn_chat.cpp.o"
  "CMakeFiles/multi_turn_chat.dir/multi_turn_chat.cpp.o.d"
  "multi_turn_chat"
  "multi_turn_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_turn_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
