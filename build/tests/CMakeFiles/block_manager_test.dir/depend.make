# Empty dependencies file for block_manager_test.
# This may be replaced when dependencies are built.
