file(REMOVE_RECURSE
  "CMakeFiles/block_manager_test.dir/engine/block_manager_test.cc.o"
  "CMakeFiles/block_manager_test.dir/engine/block_manager_test.cc.o.d"
  "block_manager_test"
  "block_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
