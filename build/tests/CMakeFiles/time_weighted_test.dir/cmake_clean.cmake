file(REMOVE_RECURSE
  "CMakeFiles/time_weighted_test.dir/metrics/time_weighted_test.cc.o"
  "CMakeFiles/time_weighted_test.dir/metrics/time_weighted_test.cc.o.d"
  "time_weighted_test"
  "time_weighted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_weighted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
