# Empty dependencies file for time_weighted_test.
# This may be replaced when dependencies are built.
