file(REMOVE_RECURSE
  "CMakeFiles/multi_turn_test.dir/workload/multi_turn_test.cc.o"
  "CMakeFiles/multi_turn_test.dir/workload/multi_turn_test.cc.o.d"
  "multi_turn_test"
  "multi_turn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_turn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
