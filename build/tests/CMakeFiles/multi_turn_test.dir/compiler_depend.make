# Empty compiler generated dependencies file for multi_turn_test.
# This may be replaced when dependencies are built.
