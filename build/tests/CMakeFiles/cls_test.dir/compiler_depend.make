# Empty compiler generated dependencies file for cls_test.
# This may be replaced when dependencies are built.
