# Empty dependencies file for kv_transfer_test.
# This may be replaced when dependencies are built.
