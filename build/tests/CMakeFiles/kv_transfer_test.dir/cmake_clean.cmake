file(REMOVE_RECURSE
  "CMakeFiles/kv_transfer_test.dir/engine/kv_transfer_test.cc.o"
  "CMakeFiles/kv_transfer_test.dir/engine/kv_transfer_test.cc.o.d"
  "kv_transfer_test"
  "kv_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
