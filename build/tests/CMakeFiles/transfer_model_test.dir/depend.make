# Empty dependencies file for transfer_model_test.
# This may be replaced when dependencies are built.
