file(REMOVE_RECURSE
  "CMakeFiles/transfer_model_test.dir/model/transfer_model_test.cc.o"
  "CMakeFiles/transfer_model_test.dir/model/transfer_model_test.cc.o.d"
  "transfer_model_test"
  "transfer_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
