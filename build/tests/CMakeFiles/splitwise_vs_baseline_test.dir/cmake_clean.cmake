file(REMOVE_RECURSE
  "CMakeFiles/splitwise_vs_baseline_test.dir/integration/splitwise_vs_baseline_test.cc.o"
  "CMakeFiles/splitwise_vs_baseline_test.dir/integration/splitwise_vs_baseline_test.cc.o.d"
  "splitwise_vs_baseline_test"
  "splitwise_vs_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitwise_vs_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
