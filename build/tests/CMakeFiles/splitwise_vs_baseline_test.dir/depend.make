# Empty dependencies file for splitwise_vs_baseline_test.
# This may be replaced when dependencies are built.
