file(REMOVE_RECURSE
  "CMakeFiles/slo_test.dir/core/slo_test.cc.o"
  "CMakeFiles/slo_test.dir/core/slo_test.cc.o.d"
  "slo_test"
  "slo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
