# Empty dependencies file for slo_test.
# This may be replaced when dependencies are built.
