# Empty dependencies file for piecewise_test.
# This may be replaced when dependencies are built.
