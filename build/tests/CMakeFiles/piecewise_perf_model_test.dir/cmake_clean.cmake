file(REMOVE_RECURSE
  "CMakeFiles/piecewise_perf_model_test.dir/model/piecewise_perf_model_test.cc.o"
  "CMakeFiles/piecewise_perf_model_test.dir/model/piecewise_perf_model_test.cc.o.d"
  "piecewise_perf_model_test"
  "piecewise_perf_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piecewise_perf_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
