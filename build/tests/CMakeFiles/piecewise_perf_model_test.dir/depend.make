# Empty dependencies file for piecewise_perf_model_test.
# This may be replaced when dependencies are built.
