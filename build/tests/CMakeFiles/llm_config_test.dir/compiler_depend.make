# Empty compiler generated dependencies file for llm_config_test.
# This may be replaced when dependencies are built.
