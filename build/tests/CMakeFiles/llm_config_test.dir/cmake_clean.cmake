file(REMOVE_RECURSE
  "CMakeFiles/llm_config_test.dir/model/llm_config_test.cc.o"
  "CMakeFiles/llm_config_test.dir/model/llm_config_test.cc.o.d"
  "llm_config_test"
  "llm_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
