file(REMOVE_RECURSE
  "CMakeFiles/request_metrics_test.dir/metrics/request_metrics_test.cc.o"
  "CMakeFiles/request_metrics_test.dir/metrics/request_metrics_test.cc.o.d"
  "request_metrics_test"
  "request_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
