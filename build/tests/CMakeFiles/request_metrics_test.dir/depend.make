# Empty dependencies file for request_metrics_test.
# This may be replaced when dependencies are built.
