file(REMOVE_RECURSE
  "CMakeFiles/provisioner_test.dir/provision/provisioner_test.cc.o"
  "CMakeFiles/provisioner_test.dir/provision/provisioner_test.cc.o.d"
  "provisioner_test"
  "provisioner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provisioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
