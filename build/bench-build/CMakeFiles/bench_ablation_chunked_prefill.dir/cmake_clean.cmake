file(REMOVE_RECURSE
  "../bench/bench_ablation_chunked_prefill"
  "../bench/bench_ablation_chunked_prefill.pdb"
  "CMakeFiles/bench_ablation_chunked_prefill.dir/bench_ablation_chunked_prefill.cpp.o"
  "CMakeFiles/bench_ablation_chunked_prefill.dir/bench_ablation_chunked_prefill.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunked_prefill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
