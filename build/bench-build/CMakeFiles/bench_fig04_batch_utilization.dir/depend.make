# Empty dependencies file for bench_fig04_batch_utilization.
# This may be replaced when dependencies are built.
