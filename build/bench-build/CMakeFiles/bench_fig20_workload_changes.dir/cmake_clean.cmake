file(REMOVE_RECURSE
  "../bench/bench_fig20_workload_changes"
  "../bench/bench_fig20_workload_changes.pdb"
  "CMakeFiles/bench_fig20_workload_changes.dir/bench_fig20_workload_changes.cpp.o"
  "CMakeFiles/bench_fig20_workload_changes.dir/bench_fig20_workload_changes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_workload_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
