# Empty compiler generated dependencies file for bench_fig20_workload_changes.
# This may be replaced when dependencies are built.
