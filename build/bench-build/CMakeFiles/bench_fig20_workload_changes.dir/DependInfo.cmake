
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig20_workload_changes.cpp" "bench-build/CMakeFiles/bench_fig20_workload_changes.dir/bench_fig20_workload_changes.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig20_workload_changes.dir/bench_fig20_workload_changes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/provision/CMakeFiles/splitwise_provision.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/splitwise_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/splitwise_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/splitwise_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/splitwise_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/splitwise_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/splitwise_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/splitwise_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
