# Empty compiler generated dependencies file for bench_fig09_power_cap.
# This may be replaced when dependencies are built.
