file(REMOVE_RECURSE
  "../bench/bench_fig09_power_cap"
  "../bench/bench_fig09_power_cap.pdb"
  "CMakeFiles/bench_fig09_power_cap.dir/bench_fig09_power_cap.cpp.o"
  "CMakeFiles/bench_fig09_power_cap.dir/bench_fig09_power_cap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_power_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
