file(REMOVE_RECURSE
  "../bench/bench_table6_slos"
  "../bench/bench_table6_slos.pdb"
  "CMakeFiles/bench_table6_slos.dir/bench_table6_slos.cpp.o"
  "CMakeFiles/bench_table6_slos.dir/bench_table6_slos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_slos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
