# Empty dependencies file for bench_table6_slos.
# This may be replaced when dependencies are built.
