# Empty dependencies file for bench_fig03_token_distributions.
# This may be replaced when dependencies are built.
