file(REMOVE_RECURSE
  "../bench/bench_fig03_token_distributions"
  "../bench/bench_fig03_token_distributions.pdb"
  "CMakeFiles/bench_fig03_token_distributions.dir/bench_fig03_token_distributions.cpp.o"
  "CMakeFiles/bench_fig03_token_distributions.dir/bench_fig03_token_distributions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_token_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
