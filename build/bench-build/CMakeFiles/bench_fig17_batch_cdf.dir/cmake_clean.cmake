file(REMOVE_RECURSE
  "../bench/bench_fig17_batch_cdf"
  "../bench/bench_fig17_batch_cdf.pdb"
  "CMakeFiles/bench_fig17_batch_cdf.dir/bench_fig17_batch_cdf.cpp.o"
  "CMakeFiles/bench_fig17_batch_cdf.dir/bench_fig17_batch_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_batch_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
