# Empty dependencies file for bench_fig17_batch_cdf.
# This may be replaced when dependencies are built.
