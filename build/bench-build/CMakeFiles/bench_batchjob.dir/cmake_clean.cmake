file(REMOVE_RECURSE
  "../bench/bench_batchjob"
  "../bench/bench_batchjob.pdb"
  "CMakeFiles/bench_batchjob.dir/bench_batchjob.cpp.o"
  "CMakeFiles/bench_batchjob.dir/bench_batchjob.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batchjob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
