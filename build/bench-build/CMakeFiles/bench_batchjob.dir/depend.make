# Empty dependencies file for bench_batchjob.
# This may be replaced when dependencies are built.
