# Empty dependencies file for bench_fig07_memory.
# This may be replaced when dependencies are built.
