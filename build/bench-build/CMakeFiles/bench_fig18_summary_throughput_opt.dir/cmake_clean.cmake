file(REMOVE_RECURSE
  "../bench/bench_fig18_summary_throughput_opt"
  "../bench/bench_fig18_summary_throughput_opt.pdb"
  "CMakeFiles/bench_fig18_summary_throughput_opt.dir/bench_fig18_summary_throughput_opt.cpp.o"
  "CMakeFiles/bench_fig18_summary_throughput_opt.dir/bench_fig18_summary_throughput_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_summary_throughput_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
