# Empty dependencies file for bench_fig18_summary_throughput_opt.
# This may be replaced when dependencies are built.
