# Empty dependencies file for bench_fig14_kv_transfer.
# This may be replaced when dependencies are built.
