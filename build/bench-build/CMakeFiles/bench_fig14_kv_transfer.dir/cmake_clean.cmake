file(REMOVE_RECURSE
  "../bench/bench_fig14_kv_transfer"
  "../bench/bench_fig14_kv_transfer.pdb"
  "CMakeFiles/bench_fig14_kv_transfer.dir/bench_fig14_kv_transfer.cpp.o"
  "CMakeFiles/bench_fig14_kv_transfer.dir/bench_fig14_kv_transfer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_kv_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
