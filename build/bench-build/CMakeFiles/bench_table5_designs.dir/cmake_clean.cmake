file(REMOVE_RECURSE
  "../bench/bench_table5_designs"
  "../bench/bench_table5_designs.pdb"
  "CMakeFiles/bench_table5_designs.dir/bench_table5_designs.cpp.o"
  "CMakeFiles/bench_table5_designs.dir/bench_table5_designs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
