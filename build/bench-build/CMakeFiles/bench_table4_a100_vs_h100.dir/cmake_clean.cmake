file(REMOVE_RECURSE
  "../bench/bench_table4_a100_vs_h100"
  "../bench/bench_table4_a100_vs_h100.pdb"
  "CMakeFiles/bench_table4_a100_vs_h100.dir/bench_table4_a100_vs_h100.cpp.o"
  "CMakeFiles/bench_table4_a100_vs_h100.dir/bench_table4_a100_vs_h100.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_a100_vs_h100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
