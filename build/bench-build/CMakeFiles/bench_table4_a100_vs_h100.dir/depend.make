# Empty dependencies file for bench_table4_a100_vs_h100.
# This may be replaced when dependencies are built.
