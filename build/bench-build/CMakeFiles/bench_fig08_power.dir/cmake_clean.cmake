file(REMOVE_RECURSE
  "../bench/bench_fig08_power"
  "../bench/bench_fig08_power.pdb"
  "CMakeFiles/bench_fig08_power.dir/bench_fig08_power.cpp.o"
  "CMakeFiles/bench_fig08_power.dir/bench_fig08_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
