# Empty dependencies file for bench_fig19_summary_isothroughput.
# This may be replaced when dependencies are built.
