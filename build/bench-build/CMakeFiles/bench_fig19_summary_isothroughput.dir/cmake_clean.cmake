file(REMOVE_RECURSE
  "../bench/bench_fig19_summary_isothroughput"
  "../bench/bench_fig19_summary_isothroughput.pdb"
  "CMakeFiles/bench_fig19_summary_isothroughput.dir/bench_fig19_summary_isothroughput.cpp.o"
  "CMakeFiles/bench_fig19_summary_isothroughput.dir/bench_fig19_summary_isothroughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_summary_isothroughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
