file(REMOVE_RECURSE
  "CMakeFiles/splitwise_sim.dir/event_queue.cc.o"
  "CMakeFiles/splitwise_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/splitwise_sim.dir/log.cc.o"
  "CMakeFiles/splitwise_sim.dir/log.cc.o.d"
  "CMakeFiles/splitwise_sim.dir/simulator.cc.o"
  "CMakeFiles/splitwise_sim.dir/simulator.cc.o.d"
  "libsplitwise_sim.a"
  "libsplitwise_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitwise_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
