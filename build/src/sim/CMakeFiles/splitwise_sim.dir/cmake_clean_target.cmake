file(REMOVE_RECURSE
  "libsplitwise_sim.a"
)
