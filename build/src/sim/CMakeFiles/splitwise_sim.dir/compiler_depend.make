# Empty compiler generated dependencies file for splitwise_sim.
# This may be replaced when dependencies are built.
