# Empty compiler generated dependencies file for splitwise_provision.
# This may be replaced when dependencies are built.
