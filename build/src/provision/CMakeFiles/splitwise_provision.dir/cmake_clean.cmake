file(REMOVE_RECURSE
  "CMakeFiles/splitwise_provision.dir/provisioner.cc.o"
  "CMakeFiles/splitwise_provision.dir/provisioner.cc.o.d"
  "libsplitwise_provision.a"
  "libsplitwise_provision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitwise_provision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
