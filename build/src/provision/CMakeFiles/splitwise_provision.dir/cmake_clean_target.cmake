file(REMOVE_RECURSE
  "libsplitwise_provision.a"
)
