file(REMOVE_RECURSE
  "CMakeFiles/splitwise_model.dir/llm_config.cc.o"
  "CMakeFiles/splitwise_model.dir/llm_config.cc.o.d"
  "CMakeFiles/splitwise_model.dir/memory_model.cc.o"
  "CMakeFiles/splitwise_model.dir/memory_model.cc.o.d"
  "CMakeFiles/splitwise_model.dir/perf_model.cc.o"
  "CMakeFiles/splitwise_model.dir/perf_model.cc.o.d"
  "CMakeFiles/splitwise_model.dir/piecewise.cc.o"
  "CMakeFiles/splitwise_model.dir/piecewise.cc.o.d"
  "CMakeFiles/splitwise_model.dir/piecewise_perf_model.cc.o"
  "CMakeFiles/splitwise_model.dir/piecewise_perf_model.cc.o.d"
  "CMakeFiles/splitwise_model.dir/power_model.cc.o"
  "CMakeFiles/splitwise_model.dir/power_model.cc.o.d"
  "CMakeFiles/splitwise_model.dir/transfer_model.cc.o"
  "CMakeFiles/splitwise_model.dir/transfer_model.cc.o.d"
  "libsplitwise_model.a"
  "libsplitwise_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitwise_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
