
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/llm_config.cc" "src/model/CMakeFiles/splitwise_model.dir/llm_config.cc.o" "gcc" "src/model/CMakeFiles/splitwise_model.dir/llm_config.cc.o.d"
  "/root/repo/src/model/memory_model.cc" "src/model/CMakeFiles/splitwise_model.dir/memory_model.cc.o" "gcc" "src/model/CMakeFiles/splitwise_model.dir/memory_model.cc.o.d"
  "/root/repo/src/model/perf_model.cc" "src/model/CMakeFiles/splitwise_model.dir/perf_model.cc.o" "gcc" "src/model/CMakeFiles/splitwise_model.dir/perf_model.cc.o.d"
  "/root/repo/src/model/piecewise.cc" "src/model/CMakeFiles/splitwise_model.dir/piecewise.cc.o" "gcc" "src/model/CMakeFiles/splitwise_model.dir/piecewise.cc.o.d"
  "/root/repo/src/model/piecewise_perf_model.cc" "src/model/CMakeFiles/splitwise_model.dir/piecewise_perf_model.cc.o" "gcc" "src/model/CMakeFiles/splitwise_model.dir/piecewise_perf_model.cc.o.d"
  "/root/repo/src/model/power_model.cc" "src/model/CMakeFiles/splitwise_model.dir/power_model.cc.o" "gcc" "src/model/CMakeFiles/splitwise_model.dir/power_model.cc.o.d"
  "/root/repo/src/model/transfer_model.cc" "src/model/CMakeFiles/splitwise_model.dir/transfer_model.cc.o" "gcc" "src/model/CMakeFiles/splitwise_model.dir/transfer_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/splitwise_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/splitwise_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
