file(REMOVE_RECURSE
  "libsplitwise_model.a"
)
