# Empty dependencies file for splitwise_model.
# This may be replaced when dependencies are built.
