
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/request_metrics.cc" "src/metrics/CMakeFiles/splitwise_metrics.dir/request_metrics.cc.o" "gcc" "src/metrics/CMakeFiles/splitwise_metrics.dir/request_metrics.cc.o.d"
  "/root/repo/src/metrics/summary.cc" "src/metrics/CMakeFiles/splitwise_metrics.dir/summary.cc.o" "gcc" "src/metrics/CMakeFiles/splitwise_metrics.dir/summary.cc.o.d"
  "/root/repo/src/metrics/table.cc" "src/metrics/CMakeFiles/splitwise_metrics.dir/table.cc.o" "gcc" "src/metrics/CMakeFiles/splitwise_metrics.dir/table.cc.o.d"
  "/root/repo/src/metrics/time_weighted.cc" "src/metrics/CMakeFiles/splitwise_metrics.dir/time_weighted.cc.o" "gcc" "src/metrics/CMakeFiles/splitwise_metrics.dir/time_weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/splitwise_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
