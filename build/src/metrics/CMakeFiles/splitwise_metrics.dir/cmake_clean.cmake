file(REMOVE_RECURSE
  "CMakeFiles/splitwise_metrics.dir/request_metrics.cc.o"
  "CMakeFiles/splitwise_metrics.dir/request_metrics.cc.o.d"
  "CMakeFiles/splitwise_metrics.dir/summary.cc.o"
  "CMakeFiles/splitwise_metrics.dir/summary.cc.o.d"
  "CMakeFiles/splitwise_metrics.dir/table.cc.o"
  "CMakeFiles/splitwise_metrics.dir/table.cc.o.d"
  "CMakeFiles/splitwise_metrics.dir/time_weighted.cc.o"
  "CMakeFiles/splitwise_metrics.dir/time_weighted.cc.o.d"
  "libsplitwise_metrics.a"
  "libsplitwise_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitwise_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
