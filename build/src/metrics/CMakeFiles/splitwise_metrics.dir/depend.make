# Empty dependencies file for splitwise_metrics.
# This may be replaced when dependencies are built.
