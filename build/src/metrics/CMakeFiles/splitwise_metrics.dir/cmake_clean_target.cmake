file(REMOVE_RECURSE
  "libsplitwise_metrics.a"
)
