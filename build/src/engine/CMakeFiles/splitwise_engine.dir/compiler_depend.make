# Empty compiler generated dependencies file for splitwise_engine.
# This may be replaced when dependencies are built.
