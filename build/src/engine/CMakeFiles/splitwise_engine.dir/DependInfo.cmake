
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/block_manager.cc" "src/engine/CMakeFiles/splitwise_engine.dir/block_manager.cc.o" "gcc" "src/engine/CMakeFiles/splitwise_engine.dir/block_manager.cc.o.d"
  "/root/repo/src/engine/kv_transfer.cc" "src/engine/CMakeFiles/splitwise_engine.dir/kv_transfer.cc.o" "gcc" "src/engine/CMakeFiles/splitwise_engine.dir/kv_transfer.cc.o.d"
  "/root/repo/src/engine/machine.cc" "src/engine/CMakeFiles/splitwise_engine.dir/machine.cc.o" "gcc" "src/engine/CMakeFiles/splitwise_engine.dir/machine.cc.o.d"
  "/root/repo/src/engine/mls.cc" "src/engine/CMakeFiles/splitwise_engine.dir/mls.cc.o" "gcc" "src/engine/CMakeFiles/splitwise_engine.dir/mls.cc.o.d"
  "/root/repo/src/engine/request.cc" "src/engine/CMakeFiles/splitwise_engine.dir/request.cc.o" "gcc" "src/engine/CMakeFiles/splitwise_engine.dir/request.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/splitwise_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/splitwise_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/splitwise_model.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/splitwise_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/splitwise_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
