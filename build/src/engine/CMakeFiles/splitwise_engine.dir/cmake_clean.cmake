file(REMOVE_RECURSE
  "CMakeFiles/splitwise_engine.dir/block_manager.cc.o"
  "CMakeFiles/splitwise_engine.dir/block_manager.cc.o.d"
  "CMakeFiles/splitwise_engine.dir/kv_transfer.cc.o"
  "CMakeFiles/splitwise_engine.dir/kv_transfer.cc.o.d"
  "CMakeFiles/splitwise_engine.dir/machine.cc.o"
  "CMakeFiles/splitwise_engine.dir/machine.cc.o.d"
  "CMakeFiles/splitwise_engine.dir/mls.cc.o"
  "CMakeFiles/splitwise_engine.dir/mls.cc.o.d"
  "CMakeFiles/splitwise_engine.dir/request.cc.o"
  "CMakeFiles/splitwise_engine.dir/request.cc.o.d"
  "libsplitwise_engine.a"
  "libsplitwise_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitwise_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
