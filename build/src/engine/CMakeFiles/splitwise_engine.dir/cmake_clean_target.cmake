file(REMOVE_RECURSE
  "libsplitwise_engine.a"
)
