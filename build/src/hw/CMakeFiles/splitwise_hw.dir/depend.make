# Empty dependencies file for splitwise_hw.
# This may be replaced when dependencies are built.
