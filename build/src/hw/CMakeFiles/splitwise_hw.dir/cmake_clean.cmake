file(REMOVE_RECURSE
  "CMakeFiles/splitwise_hw.dir/cost_model.cc.o"
  "CMakeFiles/splitwise_hw.dir/cost_model.cc.o.d"
  "CMakeFiles/splitwise_hw.dir/gpu_spec.cc.o"
  "CMakeFiles/splitwise_hw.dir/gpu_spec.cc.o.d"
  "CMakeFiles/splitwise_hw.dir/interconnect.cc.o"
  "CMakeFiles/splitwise_hw.dir/interconnect.cc.o.d"
  "CMakeFiles/splitwise_hw.dir/machine_spec.cc.o"
  "CMakeFiles/splitwise_hw.dir/machine_spec.cc.o.d"
  "libsplitwise_hw.a"
  "libsplitwise_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitwise_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
