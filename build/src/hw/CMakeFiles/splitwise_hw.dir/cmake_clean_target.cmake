file(REMOVE_RECURSE
  "libsplitwise_hw.a"
)
