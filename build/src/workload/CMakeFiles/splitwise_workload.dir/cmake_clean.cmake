file(REMOVE_RECURSE
  "CMakeFiles/splitwise_workload.dir/distribution.cc.o"
  "CMakeFiles/splitwise_workload.dir/distribution.cc.o.d"
  "CMakeFiles/splitwise_workload.dir/multi_turn.cc.o"
  "CMakeFiles/splitwise_workload.dir/multi_turn.cc.o.d"
  "CMakeFiles/splitwise_workload.dir/trace.cc.o"
  "CMakeFiles/splitwise_workload.dir/trace.cc.o.d"
  "CMakeFiles/splitwise_workload.dir/trace_gen.cc.o"
  "CMakeFiles/splitwise_workload.dir/trace_gen.cc.o.d"
  "CMakeFiles/splitwise_workload.dir/workloads.cc.o"
  "CMakeFiles/splitwise_workload.dir/workloads.cc.o.d"
  "libsplitwise_workload.a"
  "libsplitwise_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitwise_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
