file(REMOVE_RECURSE
  "libsplitwise_workload.a"
)
