
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/distribution.cc" "src/workload/CMakeFiles/splitwise_workload.dir/distribution.cc.o" "gcc" "src/workload/CMakeFiles/splitwise_workload.dir/distribution.cc.o.d"
  "/root/repo/src/workload/multi_turn.cc" "src/workload/CMakeFiles/splitwise_workload.dir/multi_turn.cc.o" "gcc" "src/workload/CMakeFiles/splitwise_workload.dir/multi_turn.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/splitwise_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/splitwise_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/trace_gen.cc" "src/workload/CMakeFiles/splitwise_workload.dir/trace_gen.cc.o" "gcc" "src/workload/CMakeFiles/splitwise_workload.dir/trace_gen.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/workload/CMakeFiles/splitwise_workload.dir/workloads.cc.o" "gcc" "src/workload/CMakeFiles/splitwise_workload.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/splitwise_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
