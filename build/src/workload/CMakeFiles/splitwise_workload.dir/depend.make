# Empty dependencies file for splitwise_workload.
# This may be replaced when dependencies are built.
