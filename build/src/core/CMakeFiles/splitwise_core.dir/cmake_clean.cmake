file(REMOVE_RECURSE
  "CMakeFiles/splitwise_core.dir/cls.cc.o"
  "CMakeFiles/splitwise_core.dir/cls.cc.o.d"
  "CMakeFiles/splitwise_core.dir/cluster.cc.o"
  "CMakeFiles/splitwise_core.dir/cluster.cc.o.d"
  "CMakeFiles/splitwise_core.dir/designs.cc.o"
  "CMakeFiles/splitwise_core.dir/designs.cc.o.d"
  "CMakeFiles/splitwise_core.dir/report_io.cc.o"
  "CMakeFiles/splitwise_core.dir/report_io.cc.o.d"
  "CMakeFiles/splitwise_core.dir/slo.cc.o"
  "CMakeFiles/splitwise_core.dir/slo.cc.o.d"
  "libsplitwise_core.a"
  "libsplitwise_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitwise_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
