file(REMOVE_RECURSE
  "libsplitwise_core.a"
)
