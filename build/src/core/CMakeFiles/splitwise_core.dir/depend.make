# Empty dependencies file for splitwise_core.
# This may be replaced when dependencies are built.
